//! Pointer jumping (pointer doubling) and list ranking.
//!
//! Algorithm 2 of the paper finds *maximal paths* of degree-2 vertices "by
//! the doubling trick in polylog time", and Section IV finds roots/cycles in
//! pseudoforests.  Both reduce to the classic pointer-jumping primitive: each
//! vertex holds a pointer to a successor, and in `O(log n)` synchronous
//! rounds every vertex learns the end of its pointer chain and its distance
//! to it, by repeatedly replacing `ptr[v]` with `ptr[ptr[v]]`.

use rayon::prelude::*;

use crate::tracker::DepthTracker;
use crate::SEQUENTIAL_CUTOFF;

/// The result of [`pointer_jump_roots`]: for every vertex, the root (fixed
/// point) its pointer chain reaches and the number of hops to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointerJumpResult {
    /// `root[v]` is the unique vertex `r` with `parent[r] == r` reachable
    /// from `v` by following parent pointers.
    pub root: Vec<usize>,
    /// `dist[v]` is the number of parent-pointer hops from `v` to `root[v]`.
    pub dist: Vec<u64>,
    /// Number of doubling rounds executed.
    pub rounds: u32,
}

/// Finds, for every vertex of a *rooted forest* given by `parent` pointers
/// (roots satisfy `parent[r] == r`), the root of its tree and its depth,
/// using pointer doubling in `⌈log₂ n⌉` rounds.
///
/// # Panics
///
/// Debug builds assert that the input is indeed a forest (no vertex is left
/// unresolved after `⌈log₂ n⌉` rounds).  In release builds a cyclic input
/// yields pointers that still sit on their cycle, with `dist` equal to the
/// number of hops performed; callers that may hand in functional graphs with
/// cycles should use the cycle-detection routines in `pm_graph` instead.
pub fn pointer_jump_roots(parent: &[usize], tracker: &DepthTracker) -> PointerJumpResult {
    let n = parent.len();
    assert!(
        parent.iter().all(|&p| p < n.max(1)),
        "parent pointer out of range"
    );
    let mut ptr: Vec<usize> = parent.to_vec();
    let mut dist: Vec<u64> = parent
        .iter()
        .enumerate()
        .map(|(v, &p)| u64::from(p != v))
        .collect();

    let max_rounds = if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    let mut rounds = 0u32;
    // Double-buffered scratch, reused across all doubling rounds: every cell
    // is overwritten each round, so no per-round allocation is needed.
    let mut ptr_scratch = vec![0usize; n];
    let mut dist_scratch = vec![0u64; n];
    for _ in 0..max_rounds {
        rounds += 1;
        tracker.round();
        tracker.work(n as u64);
        if n >= SEQUENTIAL_CUTOFF {
            ptr_scratch
                .par_iter_mut()
                .zip(dist_scratch.par_iter_mut())
                .enumerate()
                .for_each(|(v, (np, nd))| (*np, *nd) = jump_one(v, &ptr, &dist));
        } else {
            for (v, (np, nd)) in ptr_scratch
                .iter_mut()
                .zip(dist_scratch.iter_mut())
                .enumerate()
            {
                (*np, *nd) = jump_one(v, &ptr, &dist);
            }
        }
        std::mem::swap(&mut ptr, &mut ptr_scratch);
        std::mem::swap(&mut dist, &mut dist_scratch);
        // Stop early once every pointer already points at a fixed point.
        if ptr.iter().all(|&p| ptr[p] == p) {
            break;
        }
    }

    debug_assert!(
        ptr.iter().all(|&p| parent[p] == p) || has_cycle(parent),
        "pointer jumping did not converge on an acyclic input"
    );

    PointerJumpResult {
        root: ptr,
        dist,
        rounds,
    }
}

/// One synchronous pointer-doubling step for vertex `v`:
/// `ptr'[v] = ptr[ptr[v]]`, `dist'[v] = dist[v] + dist[ptr[v]]`.
/// When `ptr[v]` is already a root its `dist` is 0, so the update is a no-op
/// on the distance, which keeps the value exact at convergence.
#[inline]
fn jump_one(v: usize, ptr: &[usize], dist: &[u64]) -> (usize, u64) {
    let p = ptr[v];
    (ptr[p], dist[v] + dist[p])
}

fn has_cycle(parent: &[usize]) -> bool {
    // Simple sequential check used only in debug assertions.
    let n = parent.len();
    let mut colour = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
    for s in 0..n {
        if colour[s] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut v = s;
        loop {
            if colour[v] == 1 {
                return true;
            }
            if colour[v] == 2 {
                break;
            }
            colour[v] = 1;
            path.push(v);
            if parent[v] == v {
                break;
            }
            v = parent[v];
        }
        for u in path {
            colour[u] = 2;
        }
    }
    false
}

/// Ranks the elements of one or more linked lists: `succ[v]` is the successor
/// of `v` (or `None` for a list tail).  Returns for every element the number
/// of hops to its tail, computed by pointer doubling in `O(log n)` rounds.
///
/// This is the textbook list-ranking problem; Algorithm 2 uses it to compute
/// the distance of every edge of a maximal path from the degree-1 endpoint,
/// which decides whether the edge joins the matching ("each edge at an even
/// distance from `v0` is added to `M`").
pub fn list_rank(succ: &[Option<usize>], tracker: &DepthTracker) -> Vec<u64> {
    let parent: Vec<usize> = succ
        .iter()
        .enumerate()
        .map(|(v, s)| s.unwrap_or(v))
        .collect();
    let result = pointer_jump_roots(&parent, tracker);
    result.dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_root_dist(parent: &[usize]) -> (Vec<usize>, Vec<u64>) {
        let n = parent.len();
        let mut root = vec![0usize; n];
        let mut dist = vec![0u64; n];
        for v in 0..n {
            let mut u = v;
            let mut d = 0u64;
            while parent[u] != u {
                u = parent[u];
                d += 1;
                assert!(d as usize <= n, "cycle in test input");
            }
            root[v] = u;
            dist[v] = d;
        }
        (root, dist)
    }

    #[test]
    fn empty_and_singleton() {
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&[], &t);
        assert!(r.root.is_empty());
        let r = pointer_jump_roots(&[0], &t);
        assert_eq!(r.root, vec![0]);
        assert_eq!(r.dist, vec![0]);
    }

    #[test]
    fn single_path() {
        // 0 <- 1 <- 2 <- 3 <- 4 (parent points towards 0)
        let parent = vec![0, 0, 1, 2, 3];
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&parent, &t);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(r.root, root);
        assert_eq!(r.dist, dist);
    }

    #[test]
    fn star_and_forest() {
        // star rooted at 0 plus a separate chain rooted at 5
        let parent = vec![0, 0, 0, 0, 0, 5, 5, 6, 7];
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&parent, &t);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(r.root, root);
        assert_eq!(r.dist, dist);
    }

    #[test]
    fn long_path_logarithmic_rounds() {
        let n = 100_000usize;
        // path: parent[i] = i - 1, parent[0] = 0
        let parent: Vec<usize> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&parent, &t);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(r.root, root);
        assert_eq!(r.dist, dist);
        // Rounds must be logarithmic, not linear.
        assert!(r.rounds <= 18, "rounds = {}", r.rounds);
    }

    #[test]
    fn random_forest_matches_naive() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [2usize, 3, 10, 257, 5000] {
            // Build a random forest: parent[i] <= i, with some self-roots.
            let parent: Vec<usize> = (0..n)
                .map(|i| {
                    if i == 0 || rng.random_range(0..4) == 0 {
                        i
                    } else {
                        rng.random_range(0..i)
                    }
                })
                .collect();
            let t = DepthTracker::new();
            let r = pointer_jump_roots(&parent, &t);
            let (root, dist) = naive_root_dist(&parent);
            assert_eq!(r.root, root, "n = {n}");
            assert_eq!(r.dist, dist, "n = {n}");
        }
    }

    #[test]
    fn list_rank_simple_list() {
        // list 0 -> 1 -> 2 -> 3 -> None
        let succ = vec![Some(1), Some(2), Some(3), None];
        let t = DepthTracker::new();
        let ranks = list_rank(&succ, &t);
        assert_eq!(ranks, vec![3, 2, 1, 0]);
    }

    #[test]
    fn list_rank_multiple_lists() {
        // two lists: 0->1->None, 2->3->4->None, plus isolated 5
        let succ = vec![Some(1), None, Some(3), Some(4), None, None];
        let t = DepthTracker::new();
        let ranks = list_rank(&succ, &t);
        assert_eq!(ranks, vec![1, 0, 2, 1, 0, 0]);
    }
}
