//! Pointer jumping (pointer doubling) and list ranking.
//!
//! Algorithm 2 of the paper finds *maximal paths* of degree-2 vertices "by
//! the doubling trick in polylog time", and Section IV finds roots/cycles in
//! pseudoforests.  Both reduce to the classic pointer-jumping primitive: each
//! vertex holds a pointer to a successor, and in `O(log n)` synchronous
//! rounds every vertex learns the end of its pointer chain and its distance
//! to it, by repeatedly replacing `ptr[v]` with `ptr[ptr[v]]`.

use rayon::prelude::*;

use crate::idx::Idx;
use crate::prefetch::prefetch_read;
use crate::tracker::DepthTracker;
use crate::SEQUENTIAL_CUTOFF;

/// The result of [`pointer_jump_roots`]: for every vertex, the root (fixed
/// point) its pointer chain reaches and the number of hops to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointerJumpResult {
    /// `root[v]` is the unique vertex `r` with `parent[r] == r` reachable
    /// from `v` by following parent pointers.
    pub root: Vec<usize>,
    /// `dist[v]` is the number of parent-pointer hops from `v` to `root[v]`.
    pub dist: Vec<u64>,
    /// Number of doubling rounds executed.
    pub rounds: u32,
}

/// Finds, for every vertex of a *rooted forest* given by `parent` pointers
/// (roots satisfy `parent[r] == r`), the root of its tree and its depth,
/// using pointer doubling in `⌈log₂ n⌉` rounds.
///
/// # Panics
///
/// Debug builds assert that the input is indeed a forest (no vertex is left
/// unresolved after `⌈log₂ n⌉` rounds).  In release builds a cyclic input
/// yields pointers that still sit on their cycle, with `dist` equal to the
/// number of hops performed; callers that may hand in functional graphs with
/// cycles should use the cycle-detection routines in `pm_graph` instead.
pub fn pointer_jump_roots(parent: &[usize], tracker: &DepthTracker) -> PointerJumpResult {
    let mut root = Vec::new();
    let mut dist = Vec::new();
    let rounds = pointer_jump_roots_into(
        parent,
        &mut root,
        &mut dist,
        &mut Vec::new(),
        &mut Vec::new(),
        tracker,
    );
    PointerJumpResult { root, dist, rounds }
}

/// Allocation-free core of [`pointer_jump_roots`]: writes the roots into
/// `root` and the hop counts into `dist`, double-buffering through the two
/// scratch vectors, and returns the number of doubling rounds.  All four
/// buffers reuse their capacity, so a caller that holds them across calls
/// (one checkout from a [`crate::Workspace`] outside a peeling loop, say)
/// pays no per-round *or* per-call heap allocation.
pub fn pointer_jump_roots_into(
    parent: &[usize],
    root: &mut Vec<usize>,
    dist: &mut Vec<u64>,
    ptr_scratch: &mut Vec<usize>,
    dist_scratch: &mut Vec<u64>,
    tracker: &DepthTracker,
) -> u32 {
    let n = parent.len();
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = crate::tune::prefetch_dist();
    assert!(
        parent.iter().all(|&p| p < n.max(1)),
        "parent pointer out of range"
    );
    root.clear();
    root.extend_from_slice(parent);
    dist.clear();
    dist.extend(parent.iter().enumerate().map(|(v, &p)| u64::from(p != v)));
    // The scratches are fully overwritten every doubling round before any
    // read, so only their length matters — skip the O(n) refill when a
    // warm buffer already has it (saves two dense memsets per call, which
    // a peeling loop pays once per round), and allocate cold ones zeroed
    // (calloc fast path, no explicit memset).
    if ptr_scratch.capacity() < n {
        *ptr_scratch = vec![0; n];
    } else if ptr_scratch.len() != n {
        ptr_scratch.clear();
        ptr_scratch.resize(n, 0);
    }
    if dist_scratch.capacity() < n {
        *dist_scratch = vec![0; n];
    } else if dist_scratch.len() != n {
        dist_scratch.clear();
        dist_scratch.resize(n, 0);
    }

    let max_rounds = if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    let mut rounds = 0u32;
    for _ in 0..max_rounds {
        rounds += 1;
        tracker.round();
        tracker.work(n as u64);
        // Convergence is detected inside the round itself: a cell changes
        // iff its (pre-round) target is not yet a fixed point, so "nothing
        // changed" is read off the values already in hand — no separate
        // O(n) random-access check pass.  The flag is a pure function of
        // the data, never of scheduling.
        let changed = if n >= SEQUENTIAL_CUTOFF {
            let changed = std::sync::atomic::AtomicBool::new(false);
            ptr_scratch
                .par_iter_mut()
                .zip(dist_scratch.par_iter_mut())
                .enumerate()
                .for_each(|(v, (np, nd))| {
                    // The target of the gather a few iterations ahead is one
                    // cheap sequential read away — hint it into cache while
                    // this iteration's random load is in flight.
                    if let Some(&pa) = root.get(v + pd) {
                        prefetch_read(root, pa);
                        prefetch_read(dist, pa);
                    }
                    (*np, *nd) = jump_one(v, root, dist);
                    if *np != root[v] {
                        changed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            changed.load(std::sync::atomic::Ordering::Relaxed)
        } else {
            let mut changed = false;
            for (v, (np, nd)) in ptr_scratch
                .iter_mut()
                .zip(dist_scratch.iter_mut())
                .enumerate()
            {
                if let Some(&pa) = root.get(v + pd) {
                    prefetch_read(root, pa);
                    prefetch_read(dist, pa);
                }
                (*np, *nd) = jump_one(v, root, dist);
                changed |= *np != root[v];
            }
            changed
        };
        std::mem::swap(root, ptr_scratch);
        std::mem::swap(dist, dist_scratch);
        if !changed {
            break;
        }
    }

    debug_assert!(
        root.iter().all(|&p| parent[p] == p) || has_cycle(parent),
        "pointer jumping did not converge on an acyclic input"
    );
    rounds
}

/// The [`Idx`]-typed twin of [`pointer_jump_roots_into`], the form the
/// narrowed hot path uses: pointers are 4-byte `Idx` and hop counts are
/// 4-byte `u32` (every distance is bounded by the vertex count, which the
/// instance-size funnel keeps below `u32::MAX`), so each doubling round
/// moves half the bytes of the `usize` kernel.  Semantics, convergence
/// detection and round accounting are identical — on the same input the two
/// kernels report the same rounds and (numerically) the same roots and
/// distances.
pub fn pointer_jump_roots_into_idx(
    parent: &[Idx],
    root: &mut Vec<Idx>,
    dist: &mut Vec<u32>,
    ptr_scratch: &mut Vec<Idx>,
    dist_scratch: &mut Vec<u32>,
    tracker: &DepthTracker,
) -> u32 {
    let n = parent.len();
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = crate::tune::prefetch_dist();
    debug_assert!(
        parent.iter().all(|&p| p.get() < n.max(1)),
        "parent pointer out of range"
    );
    root.clear();
    root.extend_from_slice(parent);
    dist.clear();
    dist.extend(
        parent
            .iter()
            .enumerate()
            .map(|(v, &p)| u32::from(p.get() != v)),
    );
    // Same warm-buffer policy as the usize kernel: the scratches are fully
    // overwritten each round before any read, so only their length matters.
    if ptr_scratch.capacity() < n {
        *ptr_scratch = vec![Idx::ZERO; n];
    } else if ptr_scratch.len() != n {
        ptr_scratch.clear();
        ptr_scratch.resize(n, Idx::ZERO);
    }
    if dist_scratch.capacity() < n {
        *dist_scratch = vec![0; n];
    } else if dist_scratch.len() != n {
        dist_scratch.clear();
        dist_scratch.resize(n, 0);
    }

    let max_rounds = if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    let mut rounds = 0u32;
    for _ in 0..max_rounds {
        rounds += 1;
        tracker.round();
        tracker.work(n as u64);
        let changed = if n >= SEQUENTIAL_CUTOFF {
            let changed = std::sync::atomic::AtomicBool::new(false);
            ptr_scratch
                .par_iter_mut()
                .zip(dist_scratch.par_iter_mut())
                .enumerate()
                .for_each(|(v, (np, nd))| {
                    // Same software pipelining as the usize kernel: the
                    // lookahead target is a cheap sequential read, the hint
                    // overlaps the random gather's memory round-trip.
                    if let Some(&pa) = root.get(v + pd) {
                        prefetch_read(root, pa.get());
                        prefetch_read(dist, pa.get());
                    }
                    (*np, *nd) = jump_one_idx(v, root, dist);
                    if *np != root[v] {
                        changed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            changed.load(std::sync::atomic::Ordering::Relaxed)
        } else {
            let mut changed = false;
            for (v, (np, nd)) in ptr_scratch
                .iter_mut()
                .zip(dist_scratch.iter_mut())
                .enumerate()
            {
                if let Some(&pa) = root.get(v + pd) {
                    prefetch_read(root, pa.get());
                    prefetch_read(dist, pa.get());
                }
                (*np, *nd) = jump_one_idx(v, root, dist);
                changed |= *np != root[v];
            }
            changed
        };
        std::mem::swap(root, ptr_scratch);
        std::mem::swap(dist, dist_scratch);
        if !changed {
            break;
        }
    }
    rounds
}

#[inline(always)]
fn jump_one_idx(v: usize, ptr: &[Idx], dist: &[u32]) -> (Idx, u32) {
    let p = ptr[v];
    (ptr[p], dist[v] + dist[p])
}

/// One synchronous pointer-doubling step for vertex `v`:
/// `ptr'[v] = ptr[ptr[v]]`, `dist'[v] = dist[v] + dist[ptr[v]]`.
/// When `ptr[v]` is already a root its `dist` is 0, so the update is a no-op
/// on the distance, which keeps the value exact at convergence.
#[inline]
fn jump_one(v: usize, ptr: &[usize], dist: &[u64]) -> (usize, u64) {
    let p = ptr[v];
    (ptr[p], dist[v] + dist[p])
}

/// Min-label pointer doubling over the cycles of a permutation-like pointer
/// array: after the loop, `label[v]` is the minimum initial label on `v`'s
/// cycle.  The rounds ping-pong the two scratch buffers (no per-round
/// allocation; pass checked-out buffers for an allocation-free call) and
/// stop as soon as a round changes no label — stability is a sound
/// fixpoint (the stable window minima are constant along the stride orbit,
/// which closes into the whole cycle), so the early exit returns labels
/// bit-identical to running all `⌈log₂ n⌉` rounds.  This is the canonical
/// orientation primitive of the 2-regular perfect matcher
/// (`pm_matching::two_regular` and Algorithm 2's inlined even-cycle
/// finish).
///
/// `ptr` is consumed as working state (its final contents are the
/// `2^rounds`-fold composition); initial labels are taken from `label`.
pub fn min_label_cycles(
    label: &mut Vec<usize>,
    ptr: &mut Vec<usize>,
    label_scratch: &mut Vec<usize>,
    ptr_scratch: &mut Vec<usize>,
    tracker: &DepthTracker,
) {
    let n = label.len();
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = crate::tune::prefetch_dist();
    assert_eq!(ptr.len(), n, "label/pointer length mismatch");
    if n <= 1 {
        return;
    }
    // The scratches are fully overwritten each round before any read, so
    // only their length matters (same policy as `pointer_jump_roots_into`).
    if label_scratch.len() != n {
        label_scratch.clear();
        label_scratch.resize(n, 0);
    }
    if ptr_scratch.len() != n {
        ptr_scratch.clear();
        ptr_scratch.resize(n, 0);
    }
    let rounds = usize::BITS - (n - 1).leading_zeros();
    for _ in 0..rounds {
        tracker.round();
        tracker.work(n as u64);
        // The change flag is read off the values already in hand (no
        // separate compare pass) and is a pure function of the data.
        let changed = if n >= SEQUENTIAL_CUTOFF {
            let changed = std::sync::atomic::AtomicBool::new(false);
            label_scratch
                .par_iter_mut()
                .zip(ptr_scratch.par_iter_mut())
                .enumerate()
                .for_each(|(a, (nl, np))| {
                    // Lookahead prefetch of the doubling gather, as in
                    // `pointer_jump_roots_into`.
                    if let Some(&pa) = ptr.get(a + pd) {
                        prefetch_read(label, pa);
                        prefetch_read(ptr, pa);
                    }
                    *nl = label[a].min(label[ptr[a]]);
                    *np = ptr[ptr[a]];
                    if *nl != label[a] {
                        changed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            changed.load(std::sync::atomic::Ordering::Relaxed)
        } else {
            let mut changed = false;
            for (a, (nl, np)) in label_scratch
                .iter_mut()
                .zip(ptr_scratch.iter_mut())
                .enumerate()
            {
                if let Some(&pa) = ptr.get(a + pd) {
                    prefetch_read(label, pa);
                    prefetch_read(ptr, pa);
                }
                *nl = label[a].min(label[ptr[a]]);
                *np = ptr[ptr[a]];
                changed |= *nl != label[a];
            }
            changed
        };
        std::mem::swap(label, label_scratch);
        std::mem::swap(ptr, ptr_scratch);
        if !changed {
            break;
        }
    }
}

/// The [`Idx`]-typed twin of [`min_label_cycles`], used by the narrowed
/// even-cycle finish of Algorithm 2: labels and pointers are 4-byte `Idx`,
/// halving the bytes each doubling round streams.  Same early exit, same
/// round accounting, numerically identical labels.
pub fn min_label_cycles_idx(
    label: &mut Vec<Idx>,
    ptr: &mut Vec<Idx>,
    label_scratch: &mut Vec<Idx>,
    ptr_scratch: &mut Vec<Idx>,
    tracker: &DepthTracker,
) {
    let n = label.len();
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = crate::tune::prefetch_dist();
    assert_eq!(ptr.len(), n, "label/pointer length mismatch");
    if n <= 1 {
        return;
    }
    if label_scratch.len() != n {
        label_scratch.clear();
        label_scratch.resize(n, Idx::ZERO);
    }
    if ptr_scratch.len() != n {
        ptr_scratch.clear();
        ptr_scratch.resize(n, Idx::ZERO);
    }
    let rounds = usize::BITS - (n - 1).leading_zeros();
    for _ in 0..rounds {
        tracker.round();
        tracker.work(n as u64);
        let changed = if n >= SEQUENTIAL_CUTOFF {
            let changed = std::sync::atomic::AtomicBool::new(false);
            label_scratch
                .par_iter_mut()
                .zip(ptr_scratch.par_iter_mut())
                .enumerate()
                .for_each(|(a, (nl, np))| {
                    if let Some(&pa) = ptr.get(a + pd) {
                        prefetch_read(label, pa.get());
                        prefetch_read(ptr, pa.get());
                    }
                    *nl = label[a].min(label[ptr[a]]);
                    *np = ptr[ptr[a]];
                    if *nl != label[a] {
                        changed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            changed.load(std::sync::atomic::Ordering::Relaxed)
        } else {
            let mut changed = false;
            for (a, (nl, np)) in label_scratch
                .iter_mut()
                .zip(ptr_scratch.iter_mut())
                .enumerate()
            {
                if let Some(&pa) = ptr.get(a + pd) {
                    prefetch_read(label, pa.get());
                    prefetch_read(ptr, pa.get());
                }
                *nl = label[a].min(label[ptr[a]]);
                *np = ptr[ptr[a]];
                changed |= *nl != label[a];
            }
            changed
        };
        std::mem::swap(label, label_scratch);
        std::mem::swap(ptr, ptr_scratch);
        if !changed {
            break;
        }
    }
}

fn has_cycle(parent: &[usize]) -> bool {
    // Simple sequential check used only in debug assertions.
    let n = parent.len();
    let mut colour = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
    for s in 0..n {
        if colour[s] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut v = s;
        loop {
            if colour[v] == 1 {
                return true;
            }
            if colour[v] == 2 {
                break;
            }
            colour[v] = 1;
            path.push(v);
            if parent[v] == v {
                break;
            }
            v = parent[v];
        }
        for u in path {
            colour[u] = 2;
        }
    }
    false
}

/// Ranks the elements of one or more linked lists: `succ[v]` is the successor
/// of `v` (or `None` for a list tail).  Returns for every element the number
/// of hops to its tail, computed by pointer doubling in `O(log n)` rounds.
///
/// This is the textbook list-ranking problem; Algorithm 2 uses it to compute
/// the distance of every edge of a maximal path from the degree-1 endpoint,
/// which decides whether the edge joins the matching ("each edge at an even
/// distance from `v0` is added to `M`").
pub fn list_rank(succ: &[Option<usize>], tracker: &DepthTracker) -> Vec<u64> {
    let parent: Vec<usize> = succ
        .iter()
        .enumerate()
        .map(|(v, s)| s.unwrap_or(v))
        .collect();
    let result = pointer_jump_roots(&parent, tracker);
    result.dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_root_dist(parent: &[usize]) -> (Vec<usize>, Vec<u64>) {
        let n = parent.len();
        let mut root = vec![0usize; n];
        let mut dist = vec![0u64; n];
        for v in 0..n {
            let mut u = v;
            let mut d = 0u64;
            while parent[u] != u {
                u = parent[u];
                d += 1;
                assert!(d as usize <= n, "cycle in test input");
            }
            root[v] = u;
            dist[v] = d;
        }
        (root, dist)
    }

    #[test]
    fn empty_and_singleton() {
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&[], &t);
        assert!(r.root.is_empty());
        let r = pointer_jump_roots(&[0], &t);
        assert_eq!(r.root, vec![0]);
        assert_eq!(r.dist, vec![0]);
    }

    #[test]
    fn single_path() {
        // 0 <- 1 <- 2 <- 3 <- 4 (parent points towards 0)
        let parent = vec![0, 0, 1, 2, 3];
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&parent, &t);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(r.root, root);
        assert_eq!(r.dist, dist);
    }

    #[test]
    fn star_and_forest() {
        // star rooted at 0 plus a separate chain rooted at 5
        let parent = vec![0, 0, 0, 0, 0, 5, 5, 6, 7];
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&parent, &t);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(r.root, root);
        assert_eq!(r.dist, dist);
    }

    #[test]
    fn long_path_logarithmic_rounds() {
        let n = 100_000usize;
        // path: parent[i] = i - 1, parent[0] = 0
        let parent: Vec<usize> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let t = DepthTracker::new();
        let r = pointer_jump_roots(&parent, &t);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(r.root, root);
        assert_eq!(r.dist, dist);
        // Rounds must be logarithmic, not linear.
        assert!(r.rounds <= 18, "rounds = {}", r.rounds);
    }

    #[test]
    fn random_forest_matches_naive() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [2usize, 3, 10, 257, 5000] {
            // Build a random forest: parent[i] <= i, with some self-roots.
            let parent: Vec<usize> = (0..n)
                .map(|i| {
                    if i == 0 || rng.random_range(0..4) == 0 {
                        i
                    } else {
                        rng.random_range(0..i)
                    }
                })
                .collect();
            let t = DepthTracker::new();
            let r = pointer_jump_roots(&parent, &t);
            let (root, dist) = naive_root_dist(&parent);
            assert_eq!(r.root, root, "n = {n}");
            assert_eq!(r.dist, dist, "n = {n}");
        }
    }

    #[test]
    fn into_variant_reuses_buffers_across_calls() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = DepthTracker::new();
        let (mut root, mut dist) = (Vec::new(), Vec::new());
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for n in [5usize, 4000, 100, 4000] {
            let parent: Vec<usize> = (0..n)
                .map(|i| if i == 0 { 0 } else { rng.random_range(0..i) })
                .collect();
            let rounds =
                pointer_jump_roots_into(&parent, &mut root, &mut dist, &mut s1, &mut s2, &t);
            let want = pointer_jump_roots(&parent, &t);
            assert_eq!(root, want.root, "n = {n}");
            assert_eq!(dist, want.dist, "n = {n}");
            assert_eq!(rounds, want.rounds, "n = {n}");
        }
    }

    #[test]
    fn idx_kernel_matches_usize_kernel() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let t = DepthTracker::new();
        let (mut root, mut dist) = (Vec::new(), Vec::new());
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        for n in [0usize, 1, 5, 4000, 9001] {
            let parent: Vec<usize> = (0..n)
                .map(|i| if i == 0 { 0 } else { rng.random_range(0..i) })
                .collect();
            let parent_idx: Vec<Idx> = parent.iter().map(|&p| Idx::new(p)).collect();
            let rounds = pointer_jump_roots_into_idx(
                &parent_idx,
                &mut root,
                &mut dist,
                &mut s1,
                &mut s2,
                &t,
            );
            let want = pointer_jump_roots(&parent, &t);
            assert_eq!(rounds, want.rounds, "n = {n}");
            let root_usize: Vec<usize> = root.iter().map(|r| r.get()).collect();
            assert_eq!(root_usize, want.root, "n = {n}");
            let dist_u64: Vec<u64> = dist.iter().map(|&d| u64::from(d)).collect();
            assert_eq!(dist_u64, want.dist, "n = {n}");
        }
    }

    #[test]
    fn min_label_idx_matches_usize() {
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for n in [1usize, 2, 9, 4096] {
            // A random permutation: a disjoint union of cycles.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let t = DepthTracker::new();
            let mut label: Vec<usize> = (0..n).collect();
            let mut ptr = perm.clone();
            min_label_cycles(&mut label, &mut ptr, &mut Vec::new(), &mut Vec::new(), &t);
            let mut label_i: Vec<Idx> = (0..n).map(Idx::new).collect();
            let mut ptr_i: Vec<Idx> = perm.iter().map(|&p| Idx::new(p)).collect();
            min_label_cycles_idx(
                &mut label_i,
                &mut ptr_i,
                &mut Vec::new(),
                &mut Vec::new(),
                &t,
            );
            let label_i_usize: Vec<usize> = label_i.iter().map(|l| l.get()).collect();
            assert_eq!(label_i_usize, label, "n = {n}");
        }
    }

    #[test]
    fn list_rank_simple_list() {
        // list 0 -> 1 -> 2 -> 3 -> None
        let succ = vec![Some(1), Some(2), Some(3), None];
        let t = DepthTracker::new();
        let ranks = list_rank(&succ, &t);
        assert_eq!(ranks, vec![3, 2, 1, 0]);
    }

    #[test]
    fn list_rank_multiple_lists() {
        // two lists: 0->1->None, 2->3->4->None, plus isolated 5
        let succ = vec![Some(1), None, Some(3), Some(4), None, None];
        let t = DepthTracker::new();
        let ranks = list_rank(&succ, &t);
        assert_eq!(ranks, vec![1, 0, 2, 1, 0, 0]);
    }
}
