//! The reusable solver workspace: typed buffer pools and epoch marks.
//!
//! Every NC algorithm in this repository is a pipeline of synchronous
//! rounds over dense arrays, and until this module existed each call heap-
//! allocated all of its scratch from scratch — pointer-jumping double
//! buffers, CSR offset arrays, liveness flags, match arrays.  A
//! [`Workspace`] owns that scratch instead: buffers are *checked out* with
//! the `take_*` methods (a cleared, resized `Vec` whose capacity survives
//! from the last checkout) and *returned* with the `put_*` methods when the
//! algorithm is done with them.  A solver that keeps one workspace alive
//! across requests therefore performs **zero heap allocations on a warm
//! solve**: every `take` is a `clear` + in-capacity `resize`, every `put`
//! pushes onto a free list that already has room.
//!
//! # Checkout discipline
//!
//! * `take_*(len, fill)` hands out a buffer of exactly `len` elements, all
//!   set to `fill`.  `take_*_empty()` hands out a zero-length buffer for
//!   push-style accumulation (its capacity also survives reuse).
//! * Buffers must be `put_*` back before the solve returns, in any order;
//!   the pools are plain LIFO free lists.  A buffer that is *not* returned
//!   is simply dropped — correctness is unaffected, the next checkout just
//!   re-allocates.
//! * Nested checkouts are fine (the pools are per-type `Vec<Vec<T>>`), and
//!   algorithms at different layers (`pm_pram`, `pm_graph`, `pm_popular`)
//!   share one workspace so the same slabs back every phase of a pipeline.
//!
//! # Epoch clearing
//!
//! Sparse "have I seen this id?" sets are served by [`EpochMarks`], which
//! clears in O(1) by bumping a generation counter instead of rewriting the
//! array — the pattern the instance validator uses for duplicate detection,
//! made reusable across solves.
//!
//! # Panic poisoning
//!
//! A panic that unwinds through a solve leaves checked-out buffers
//! unreturned and half-written — the pool itself stays memory-safe, but the
//! *contents* of anything later handed back out are garbage relative to the
//! interrupted algorithm's invariants.  The serving layer brackets every
//! solve with [`begin_epoch`](Workspace::begin_epoch) /
//! [`end_epoch`](Workspace::end_epoch): if a panic skips the `end_epoch`,
//! the next `begin_epoch` observes the still-open epoch, sets a permanent
//! poison flag (and fires a debug assertion), and the solver refuses
//! further work with a typed error instead of silently serving from dirty
//! state.  Recovery is by discarding the workspace and rebuilding — exactly
//! what `pm_serve` does after `catch_unwind` traps a solve panic.

use std::sync::atomic::{AtomicU32, AtomicUsize};

use crate::idx::Idx;

/// A free list of reusable `Vec<T>` buffers (one per element type held by a
/// [`Workspace`]), kept sorted by capacity.
///
/// Checkouts are **best-fit**: `take(len, _)` hands out the smallest free
/// buffer whose capacity already covers `len`; when nothing fits it
/// allocates fresh (on the calloc fast path for zero fills) and leaves the
/// undersized buffers pooled for smaller roles, so a stream of growing
/// request sizes converges with at most one resident buffer per (role,
/// largest-size) pair.  `take_empty` hands out the largest free buffer
/// (push-style roles grow to data-dependent sizes, so they get first claim
/// on big slabs).  Best-fit matters: a plain LIFO stack rotates buffers
/// through roles across otherwise-identical solves, re-pairing small
/// buffers with large roles for many warm-up iterations, whereas best-fit
/// reaches the zero-allocation steady state after a couple of warm calls.
#[derive(Debug, Default)]
struct BufPool<T> {
    free: Vec<Vec<T>>,
}

impl<T: Clone> BufPool<T> {
    fn take(&mut self, len: usize, fill: T) -> Vec<T> {
        match self.pop_fitting(len) {
            Some(mut v) => {
                v.clear();
                v.resize(len, fill);
                v
            }
            // Cold checkout: `from_elem` hits the `alloc_zeroed` fast path
            // for zero fills (lazily-zeroed pages, no explicit memset) —
            // the same allocation profile the pre-workspace code had, so
            // the one-shot free functions stay as fast as ever.
            None => vec![fill; len],
        }
    }

    /// Best-fit pop: the smallest free buffer whose capacity covers `len`,
    /// or `None` when nothing fits (the caller allocates fresh; undersized
    /// buffers stay pooled for smaller roles).
    fn pop_fitting(&mut self, len: usize) -> Option<Vec<T>> {
        let idx = self.free.iter().position(|v| v.capacity() >= len)?;
        Some(self.free.remove(idx))
    }

    /// Like `take`, but the contents are **unspecified** (stale data from
    /// earlier checkouts); only the length is guaranteed.  For roles that
    /// overwrite every slot before reading — skips the O(len) fill.
    fn take_dirty(&mut self, len: usize, fill: T) -> Vec<T> {
        match self.pop_fitting(len) {
            Some(mut v) => {
                if v.len() > len {
                    v.truncate(len);
                } else {
                    // In-capacity resize: only the gap beyond the stale
                    // length is filled.
                    v.resize(len, fill);
                }
                v
            }
            None => vec![fill; len],
        }
    }

    fn take_empty(&mut self) -> Vec<T> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        v
    }

    fn put(&mut self, v: Vec<T>) {
        let at = self
            .free
            .iter()
            .position(|f| f.capacity() >= v.capacity())
            .unwrap_or(self.free.len());
        self.free.insert(at, v);
    }
}

macro_rules! pool_methods {
    ($take:ident, $take_empty:ident, $take_dirty:ident, $put:ident, $field:ident, $ty:ty) => {
        /// Checks out a buffer of `len` elements, all set to `fill`.
        pub fn $take(&mut self, len: usize, fill: $ty) -> Vec<$ty> {
            self.$field.take(len, fill)
        }

        /// Checks out an empty buffer (capacity reused) for push-style fills.
        pub fn $take_empty(&mut self) -> Vec<$ty> {
            self.$field.take_empty()
        }

        /// Checks out a buffer of `len` elements with **unspecified**
        /// contents (stale data from an earlier checkout; `fill` is used
        /// only to extend a too-short buffer).  Strictly for roles that
        /// write every slot before reading it — skips the O(len) fill of
        /// the clean variant.
        pub fn $take_dirty(&mut self, len: usize, fill: $ty) -> Vec<$ty> {
            self.$field.take_dirty(len, fill)
        }

        /// Returns a buffer to the pool for the next checkout.
        pub fn $put(&mut self, v: Vec<$ty>) {
            self.$field.put(v);
        }
    };
}

/// A slab of typed, reusable scratch buffers shared by every layer of the
/// solver pipeline (see the module docs for the checkout discipline).
#[derive(Debug, Default)]
pub struct Workspace {
    usizes: BufPool<usize>,
    u64s: BufPool<u64>,
    i64s: BufPool<i64>,
    bools: BufPool<bool>,
    pairs: BufPool<(usize, usize)>,
    opts: BufPool<Option<usize>>,
    atomics: Vec<Vec<AtomicUsize>>,
    // The 32-bit pools of the narrowed hot path (DESIGN.md §7): indices and
    // sentinel arrays are `Idx`, counts/distances are `u32`, margins are
    // `i32`, edge lists are `(Idx, Idx)`.
    idxs: BufPool<Idx>,
    u32s: BufPool<u32>,
    i32s: BufPool<i32>,
    idx_pairs: BufPool<(Idx, Idx)>,
    atomics_u32: Vec<Vec<AtomicU32>>,
    // Panic-poisoning state (see the module docs): `epoch_open` is true
    // between `begin_epoch` and `end_epoch`; `poisoned` latches permanently
    // once a begin observes a still-open epoch (a panic unwound a solve).
    epoch_open: bool,
    poisoned: bool,
}

impl Workspace {
    /// Creates an empty workspace; buffers are allocated lazily on first
    /// checkout and reused forever after.
    pub fn new() -> Self {
        Self::default()
    }

    pool_methods!(
        take_usize,
        take_usize_empty,
        take_usize_dirty,
        put_usize,
        usizes,
        usize
    );
    pool_methods!(take_u64, take_u64_empty, take_u64_dirty, put_u64, u64s, u64);
    pool_methods!(take_i64, take_i64_empty, take_i64_dirty, put_i64, i64s, i64);
    pool_methods!(
        take_bool,
        take_bool_empty,
        take_bool_dirty,
        put_bool,
        bools,
        bool
    );
    pool_methods!(
        take_pair,
        take_pair_empty,
        take_pair_dirty,
        put_pair,
        pairs,
        (usize, usize)
    );
    pool_methods!(
        take_opt,
        take_opt_empty,
        take_opt_dirty,
        put_opt,
        opts,
        Option<usize>
    );
    pool_methods!(take_idx, take_idx_empty, take_idx_dirty, put_idx, idxs, Idx);
    pool_methods!(take_u32, take_u32_empty, take_u32_dirty, put_u32, u32s, u32);
    pool_methods!(take_i32, take_i32_empty, take_i32_dirty, put_i32, i32s, i32);
    pool_methods!(
        take_idx_pair,
        take_idx_pair_empty,
        take_idx_pair_dirty,
        put_idx_pair,
        idx_pairs,
        (Idx, Idx)
    );

    /// Checks out a buffer of `len` atomics initialised to the identity
    /// permutation (`v[i] == i`) — the shape the connected-components
    /// hooking loop starts from.  `AtomicUsize` is not `Clone`, so this
    /// pool refills by pushing within the retained capacity.
    pub fn take_atomic_identity(&mut self, len: usize) -> Vec<AtomicUsize> {
        let mut v = self.atomics.pop().unwrap_or_default();
        v.clear();
        v.reserve(len);
        for i in 0..len {
            v.push(AtomicUsize::new(i));
        }
        v
    }

    /// Returns an atomic buffer to the pool.
    pub fn put_atomic(&mut self, v: Vec<AtomicUsize>) {
        self.atomics.push(v);
    }

    /// The 32-bit sibling of [`take_atomic_identity`](Self::take_atomic_identity):
    /// a buffer of `len` `AtomicU32`s initialised to the identity permutation,
    /// for the narrowed connected-components hooking loop.
    ///
    /// # Panics
    /// Debug builds panic if `len` exceeds `u32` range (the instance-size
    /// funnel makes that unreachable on the solve path).
    pub fn take_atomic_u32_identity(&mut self, len: usize) -> Vec<AtomicU32> {
        debug_assert!(len <= Idx::MAX_INDEX + 1);
        let mut v = self.atomics_u32.pop().unwrap_or_default();
        v.clear();
        v.reserve(len);
        for i in 0..len as u32 {
            v.push(AtomicU32::new(i));
        }
        v
    }

    /// Returns a 32-bit atomic buffer to the pool.
    pub fn put_atomic_u32(&mut self, v: Vec<AtomicU32>) {
        self.atomics_u32.push(v);
    }

    /// Opens a solve epoch (see the module docs on panic poisoning).
    ///
    /// If the previous epoch was never closed — a panic unwound the solve
    /// that opened it — the workspace is permanently poisoned and a debug
    /// assertion fires; release builds record the same condition in the
    /// O(1) [`is_poisoned`](Self::is_poisoned) flag.  Callers that must
    /// stay panic-free on the detection path (the serving layer) should
    /// test [`epoch_open`](Self::epoch_open)/[`is_poisoned`] *before*
    /// calling this.
    pub fn begin_epoch(&mut self) {
        if self.epoch_open {
            self.poisoned = true;
            debug_assert!(
                false,
                "workspace epoch reopened: a panic unwound the previous solve, \
                 its checked-out buffers are inconsistent — discard this workspace"
            );
        }
        self.epoch_open = true;
    }

    /// Closes the current solve epoch.  Must run on every non-panicking
    /// exit path of a solve (typed errors included).
    pub fn end_epoch(&mut self) {
        self.epoch_open = false;
    }

    /// True while a solve epoch is open.  An open epoch observed *between*
    /// solves means the last solve panicked before its `end_epoch`.
    pub fn epoch_open(&self) -> bool {
        self.epoch_open
    }

    /// True once the workspace has been caught reopening an unclosed epoch:
    /// pooled buffer contents can no longer be trusted and the workspace
    /// must be discarded.  The flag latches — there is deliberately no way
    /// to clear it short of rebuilding.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// A sparse membership set over `0..capacity` with O(1) clearing: an entry
/// is *in* the set iff its stamp equals the current epoch, so `clear` is a
/// single counter bump and the backing array is written only where the set
/// is actually used.
#[derive(Debug, Default)]
pub struct EpochMarks {
    stamp: Vec<u64>,
    epoch: u64,
}

impl EpochMarks {
    /// Creates an empty mark set over an empty domain; grow with
    /// [`reset`](Self::reset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set and (re)sizes the domain to `capacity`.  Growing past
    /// the retained capacity is the only operation that allocates.
    pub fn reset(&mut self, capacity: usize) {
        self.epoch += 1;
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
        }
        if self.epoch == u64::MAX {
            // Unreachable in practice; kept for paranoia so a wrapped epoch
            // can never alias a stale stamp.
            self.stamp.clear();
            self.stamp.resize(capacity, 0);
            self.epoch = 1;
        }
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let fresh = self.stamp[i] != self.epoch;
        self.stamp[i] = self.epoch;
        fresh
    }

    /// True iff `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

/// A sparse `id -> u32` map over `0..capacity` with O(1) clearing — the
/// value-carrying sibling of [`EpochMarks`].  An entry is *present* iff its
/// stamp equals the current epoch, so `reset` is a single counter bump and
/// the backing arrays are written only where the map is actually used.
///
/// This is the remap table of the incremental solver: a component shard
/// renumbers its (sparse, global) post ids into a dense `0..k` id space
/// before handing the slice to the solve kernels, and a stamped map lets
/// every shard start from a logically-empty table without an O(total)
/// clear or a per-shard hash map allocation.
#[derive(Debug, Default)]
pub struct EpochMap {
    stamp: Vec<u64>,
    val: Vec<u32>,
    epoch: u64,
}

impl EpochMap {
    /// Creates an empty map over an empty domain; grow with
    /// [`reset`](Self::reset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the map and (re)sizes the domain to `capacity`.  Growing past
    /// the retained capacity is the only operation that allocates.
    pub fn reset(&mut self, capacity: usize) {
        self.epoch += 1;
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
            self.val.resize(capacity, 0);
        }
        if self.epoch == u64::MAX {
            // Unreachable in practice; kept so a wrapped epoch can never
            // alias a stale stamp (same paranoia as EpochMarks).
            self.stamp.clear();
            self.stamp.resize(capacity, 0);
            self.epoch = 1;
        }
    }

    /// Sets `key -> value`, overwriting any current-epoch entry.
    pub fn set(&mut self, key: usize, value: u32) {
        self.stamp[key] = self.epoch;
        self.val[key] = value;
    }

    /// The value mapped to `key` this epoch, if any.
    pub fn get(&self, key: usize) -> Option<u32> {
        (self.stamp[key] == self.epoch).then(|| self.val[key])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_cleared_filled_buffer() {
        let mut ws = Workspace::new();
        let mut v = ws.take_usize(4, 7);
        assert_eq!(v, vec![7, 7, 7, 7]);
        v[0] = 99;
        ws.put_usize(v);
        // The next checkout must not observe stale contents.
        let v = ws.take_usize(6, 1);
        assert_eq!(v, vec![1; 6]);
        ws.put_usize(v);
    }

    #[test]
    fn dirty_take_has_right_length_and_skips_fill() {
        let mut ws = Workspace::new();
        let mut v = ws.take_usize(8, 42);
        v[0] = 7;
        ws.put_usize(v);
        // Same length back: contents are stale, length is exact.
        let v = ws.take_usize_dirty(8, 0);
        assert_eq!(v.len(), 8);
        assert_eq!(v[0], 7, "dirty take must not refill");
        ws.put_usize(v);
        // Shorter request truncates; longer request extends with the fill.
        let v = ws.take_usize_dirty(3, 0);
        assert_eq!(v.len(), 3);
        ws.put_usize(v);
        let v = ws.take_usize_dirty(20, 5);
        assert_eq!(v.len(), 20);
        assert_eq!(v[19], 5);
        ws.put_usize(v);
    }

    #[test]
    fn best_fit_checkout_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take_usize(10, 0);
        let big = ws.take_usize(1000, 0);
        let (small_cap, big_cap) = (small.capacity(), big.capacity());
        ws.put_usize(big);
        ws.put_usize(small);
        // A mid-size request must take the big buffer, not grow the small one.
        let v = ws.take_usize(500, 0);
        assert!(v.capacity() >= big_cap.min(1000));
        ws.put_usize(v);
        // A small request takes the small buffer even though the big one
        // was returned more recently.
        let v = ws.take_usize(5, 0);
        assert!(v.capacity() < 1000 || small_cap >= 1000);
        ws.put_usize(v);
    }

    #[test]
    fn capacity_survives_reuse() {
        let mut ws = Workspace::new();
        let v = ws.take_u64(1000, 0);
        let cap = v.capacity();
        ws.put_u64(v);
        let v = ws.take_u64(500, 3);
        assert!(v.capacity() >= cap, "capacity must be retained");
        assert_eq!(v.len(), 500);
        ws.put_u64(v);
    }

    #[test]
    fn pools_are_per_type_and_nestable() {
        let mut ws = Workspace::new();
        let a = ws.take_bool(3, true);
        let b = ws.take_bool(2, false);
        let c = ws.take_i64(2, -1);
        assert_eq!(a, vec![true; 3]);
        assert_eq!(b, vec![false; 2]);
        assert_eq!(c, vec![-1; 2]);
        ws.put_bool(a);
        ws.put_bool(b);
        ws.put_i64(c);
        let p = ws.take_pair_empty();
        assert!(p.is_empty());
        ws.put_pair(p);
        let o = ws.take_opt(2, None);
        assert_eq!(o, vec![None, None]);
        ws.put_opt(o);
    }

    #[test]
    fn atomic_identity_checkout() {
        use std::sync::atomic::Ordering;
        let mut ws = Workspace::new();
        let v = ws.take_atomic_identity(5);
        assert_eq!(v.len(), 5);
        for (i, a) in v.iter().enumerate() {
            assert_eq!(a.load(Ordering::Relaxed), i);
        }
        v[2].store(77, Ordering::Relaxed);
        ws.put_atomic(v);
        let v = ws.take_atomic_identity(3);
        assert_eq!(v[2].load(Ordering::Relaxed), 2, "reinitialised on take");
        ws.put_atomic(v);
    }

    #[test]
    fn narrow_pools_are_independent() {
        use std::sync::atomic::Ordering;
        let mut ws = Workspace::new();
        let a = ws.take_idx(3, Idx::NONE);
        assert_eq!(a, vec![Idx::NONE; 3]);
        let b = ws.take_u32(2, 7);
        assert_eq!(b, vec![7, 7]);
        let c = ws.take_i32(2, -3);
        assert_eq!(c, vec![-3, -3]);
        let d = ws.take_idx_pair_empty();
        assert!(d.is_empty());
        ws.put_idx(a);
        ws.put_u32(b);
        ws.put_i32(c);
        ws.put_idx_pair(d);
        let v = ws.take_atomic_u32_identity(4);
        assert_eq!(v[3].load(Ordering::Relaxed), 3);
        v[1].store(99, Ordering::Relaxed);
        ws.put_atomic_u32(v);
        let v = ws.take_atomic_u32_identity(2);
        assert_eq!(v[1].load(Ordering::Relaxed), 1, "reinitialised on take");
        ws.put_atomic_u32(v);
    }

    #[test]
    fn panic_inside_epoch_poisons_the_workspace() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut ws = Workspace::new();

        // A clean solve: epoch opens, buffers cycle, epoch closes.
        ws.begin_epoch();
        let v = ws.take_idx(4, Idx::NONE);
        ws.put_idx(v);
        ws.end_epoch();
        assert!(!ws.epoch_open());
        assert!(!ws.is_poisoned());

        // A solve that panics mid-flight: the checkout is never returned
        // and `end_epoch` never runs.
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            ws.begin_epoch();
            let _buf = ws.take_u32(8, 0);
            panic!("injected solve panic");
        }));
        assert!(unwound.is_err());
        assert!(ws.epoch_open(), "the unwound epoch must still be open");
        assert!(
            !ws.is_poisoned(),
            "poison latches on the *next* begin, when reuse is attempted"
        );

        // The next solve attempt detects the inconsistent state.  In debug
        // builds the detection is an assertion (caught here); either way
        // the release-mode flag is set before the assertion fires.
        let reuse = catch_unwind(AssertUnwindSafe(|| ws.begin_epoch()));
        assert_eq!(
            reuse.is_err(),
            cfg!(debug_assertions),
            "debug builds assert on reuse, release builds only set the flag"
        );
        assert!(ws.is_poisoned(), "reuse after a panic must poison");
        // Poison latches: closing the epoch does not clear it.
        ws.end_epoch();
        assert!(ws.is_poisoned());
    }

    #[test]
    fn epoch_marks_clear_in_constant_time() {
        let mut m = EpochMarks::new();
        m.reset(10);
        assert!(m.insert(3));
        assert!(!m.insert(3));
        assert!(m.contains(3));
        assert!(!m.contains(4));
        m.reset(10);
        assert!(!m.contains(3), "reset must clear membership");
        assert!(m.insert(3));
    }

    #[test]
    fn epoch_map_clears_in_constant_time_and_overwrites() {
        let mut m = EpochMap::new();
        m.reset(8);
        assert_eq!(m.get(2), None);
        m.set(2, 41);
        m.set(2, 42);
        m.set(7, 9);
        assert_eq!(m.get(2), Some(42));
        assert_eq!(m.get(7), Some(9));
        assert_eq!(m.get(3), None);
        m.reset(8);
        assert_eq!(m.get(2), None, "reset must clear all entries");
        m.set(2, 1);
        assert_eq!(m.get(2), Some(1));
        // Growing the domain keeps earlier entries addressable.
        m.reset(16);
        m.set(15, 5);
        assert_eq!(m.get(15), Some(5));
        assert_eq!(m.get(2), None);
    }
}
