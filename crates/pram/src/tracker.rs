//! Work/depth accounting for the PRAM simulation.
//!
//! The paper's NC claims are statements about the *depth* (number of
//! synchronous parallel rounds) and *work* (total number of elementary
//! operations) of an algorithm.  Every algorithm in this repository accepts a
//! [`DepthTracker`] and reports into it, which lets the benchmark harness
//! verify, e.g., that the while-loop of Algorithm 2 runs `O(log n)` rounds
//! (Lemma 2) and that the overall work stays polynomial.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of the counters held by a [`DepthTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PramStats {
    /// Number of synchronous parallel rounds executed (the PRAM depth).
    pub depth: u64,
    /// Total number of elementary operations charged (the PRAM work).
    pub work: u64,
    /// Number of "phases": coarse algorithm sections (e.g. "build reduced
    /// graph", "peel degree-1 paths", "match even cycles").  Useful for
    /// per-phase reporting in the harness.
    pub phases: u64,
}

impl PramStats {
    /// Returns `work / depth`, the average parallelism exposed by the
    /// algorithm, or 0 when no rounds were executed.
    pub fn average_parallelism(&self) -> f64 {
        if self.depth == 0 {
            0.0
        } else {
            self.work as f64 / self.depth as f64
        }
    }
}

/// Thread-safe counter of PRAM rounds and work.
///
/// `DepthTracker` is deliberately tiny: charging work is a relaxed atomic
/// add, and advancing a round is a single atomic increment performed by the
/// coordinating thread between rounds.  The tracker therefore does not
/// perturb the wall-clock benchmarks in any measurable way.
#[derive(Debug, Default)]
pub struct DepthTracker {
    depth: AtomicU64,
    work: AtomicU64,
    phases: AtomicU64,
}

impl DepthTracker {
    /// Creates a tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one synchronous parallel round (one unit of depth).
    pub fn round(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` synchronous parallel rounds at once.
    pub fn rounds(&self, n: u64) {
        self.depth.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` units of work (elementary operations).
    pub fn work(&self, n: u64) {
        self.work.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks the beginning of a new coarse phase of the algorithm.
    pub fn phase(&self) {
        self.phases.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a snapshot of the counters.
    pub fn stats(&self) -> PramStats {
        PramStats {
            depth: self.depth.load(Ordering::Relaxed),
            work: self.work.load(Ordering::Relaxed),
            phases: self.phases.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.depth.store(0, Ordering::Relaxed);
        self.work.store(0, Ordering::Relaxed);
        self.phases.store(0, Ordering::Relaxed);
    }

    /// Runs `f` as one synchronous round: increments the depth by one before
    /// executing `f`, and charges `work` units of work.
    pub fn in_round<R>(&self, work: u64, f: impl FnOnce() -> R) -> R {
        self.round();
        self.work(work);
        f()
    }

    /// Adds another tracker's totals to this one — how the thin free-function
    /// wrappers transfer a solver's internal accounting onto the tracker the
    /// caller supplied.
    pub fn absorb(&self, stats: PramStats) {
        self.depth.fetch_add(stats.depth, Ordering::Relaxed);
        self.work.fetch_add(stats.work, Ordering::Relaxed);
        self.phases.fetch_add(stats.phases, Ordering::Relaxed);
    }

    /// A batched work charger for hot per-element loops: counts locally and
    /// performs a single relaxed `fetch_add` when flushed (or dropped),
    /// instead of one atomic per element.  Totals are exact and independent
    /// of how a loop is chunked across threads, so depth/work accounting
    /// stays bit-for-bit identical across thread counts.
    pub fn local(&self) -> LocalWork<'_> {
        LocalWork {
            tracker: self,
            count: 0,
        }
    }
}

/// Per-chunk work accumulator created by [`DepthTracker::local`]; flushes
/// its count to the tracker with one atomic add on drop.
#[derive(Debug)]
pub struct LocalWork<'a> {
    tracker: &'a DepthTracker,
    count: u64,
}

impl LocalWork<'_> {
    /// Records `n` units of work locally (no atomic traffic).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }
}

impl Drop for LocalWork<'_> {
    fn drop(&mut self) {
        if self.count != 0 {
            self.tracker.work(self.count);
        }
    }
}

impl Clone for DepthTracker {
    fn clone(&self) -> Self {
        let s = self.stats();
        let t = DepthTracker::new();
        t.depth.store(s.depth, Ordering::Relaxed);
        t.work.store(s.work, Ordering::Relaxed);
        t.phases.store(s.phases, Ordering::Relaxed);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tracker_is_zeroed() {
        let t = DepthTracker::new();
        assert_eq!(t.stats(), PramStats::default());
        assert_eq!(t.stats().average_parallelism(), 0.0);
    }

    #[test]
    fn round_and_work_accumulate() {
        let t = DepthTracker::new();
        t.round();
        t.round();
        t.work(10);
        t.work(5);
        t.phase();
        let s = t.stats();
        assert_eq!(s.depth, 2);
        assert_eq!(s.work, 15);
        assert_eq!(s.phases, 1);
        assert!((s.average_parallelism() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn rounds_bulk_increment() {
        let t = DepthTracker::new();
        t.rounds(7);
        assert_eq!(t.stats().depth, 7);
    }

    #[test]
    fn reset_clears_counters() {
        let t = DepthTracker::new();
        t.round();
        t.work(3);
        t.phase();
        t.reset();
        assert_eq!(t.stats(), PramStats::default());
    }

    #[test]
    fn in_round_charges_and_returns() {
        let t = DepthTracker::new();
        let v = t.in_round(42, || 7usize);
        assert_eq!(v, 7);
        assert_eq!(t.stats().depth, 1);
        assert_eq!(t.stats().work, 42);
    }

    #[test]
    fn clone_preserves_counters() {
        let t = DepthTracker::new();
        t.rounds(3);
        t.work(9);
        let u = t.clone();
        assert_eq!(u.stats(), t.stats());
        u.round();
        assert_ne!(u.stats(), t.stats());
    }

    #[test]
    fn absorb_merges_totals() {
        let a = DepthTracker::new();
        a.rounds(2);
        a.work(5);
        a.phase();
        let b = DepthTracker::new();
        b.round();
        b.work(7);
        b.absorb(a.stats());
        let s = b.stats();
        assert_eq!(s.depth, 3);
        assert_eq!(s.work, 12);
        assert_eq!(s.phases, 1);
    }

    #[test]
    fn local_work_flushes_once_on_drop() {
        let t = DepthTracker::new();
        {
            let mut w = t.local();
            for _ in 0..10 {
                w.add(3);
            }
            assert_eq!(t.stats().work, 0, "no atomic traffic before the flush");
        }
        assert_eq!(t.stats().work, 30);
        // An empty charger adds nothing.
        drop(t.local());
        assert_eq!(t.stats().work, 30);
    }

    #[test]
    fn concurrent_work_charges_are_not_lost() {
        use std::sync::Arc;
        let t = Arc::new(DepthTracker::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.work(1);
                    }
                });
            }
        });
        assert_eq!(t.stats().work, 8000);
    }
}
