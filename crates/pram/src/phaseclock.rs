//! The process-global slot-based phase clock behind `harness --profile`.
//!
//! The typed front door lives in `pm_popular::profile` (`SolvePhase` names
//! each slot and the harness prints them), but the raw accumulators live
//! here, one layer below every crate that owns a timed kernel: `pm_popular`
//! times the solve pipeline and `pm_matching` times the Hopcroft–Karp
//! referee, and `pm_pram` is the one crate both already depend on.
//!
//! The design is unchanged from the original clock: disabled by default, so
//! a span costs a single relaxed load; enabled, a span adds one `Instant`
//! pair and one relaxed `fetch_add` on drop.  No path allocates, so the
//! zero-allocation warm-solve gate holds with profiling on or off.  Spans
//! from concurrent solves (e.g. a fanned-out batch) sum into the same
//! cells; the harness profiles single-solve loops, where the totals are
//! exact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of accumulator slots.  The registry below names them; adding a
/// phase means claiming the next free slot and growing this constant.
pub const PHASE_SLOTS: usize = 8;

/// The slot registry: which kernel charges which accumulator.  Kept here —
/// rather than per-crate constants that could silently collide — so the
/// process-wide table has exactly one source of truth.
pub mod slot {
    /// Reduced-graph construction (`pm_popular::reduced::build_into`).
    pub const REDUCE: usize = 0;
    /// Algorithm 2 end to end (CSR build, peeling, even-cycle finish).
    pub const ALGORITHM2: usize = 1;
    /// The promotion pass of Algorithm 1.
    pub const PROMOTE: usize = 2;
    /// The fused CSR-offsets + degree-census scan inside Algorithm 2.
    pub const CENSUS: usize = 3;
    /// List ranking: pointer jumping and min-label cycle doubling.
    pub const JUMP: usize = 4;
    /// Hopcroft–Karp BFS layering sweeps.
    pub const HK_BFS: usize = 5;
    /// Hopcroft–Karp layered DFS sweeps (path search + in-place flips).
    pub const HK_DFS: usize = 6;
    /// Hopcroft–Karp final matching write-out.
    pub const HK_AUGMENT: usize = 7;
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NANOS: [AtomicU64; PHASE_SLOTS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turns the phase clock on or off (off by default).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes every slot.
pub fn reset() {
    for cell in &NANOS {
        cell.store(0, Ordering::Relaxed);
    }
}

/// Accumulated nanoseconds of one slot.
pub fn nanos(slot: usize) -> u64 {
    NANOS[slot].load(Ordering::Relaxed)
}

/// An RAII span: adds its elapsed wall time to its slot on drop.  A no-op
/// (one relaxed load, no clock read) while the clock is disabled.
pub struct PhaseSpan {
    slot: usize,
    start: Option<Instant>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            NANOS[self.slot].fetch_add(elapsed, Ordering::Relaxed);
        }
    }
}

/// Opens a timing span charging `slot` (see [`PhaseSpan`]).
pub fn span(slot: usize) -> PhaseSpan {
    let start = ENABLED.load(Ordering::Relaxed).then(Instant::now);
    PhaseSpan { slot, start }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_noops_while_disabled_and_accumulate_while_enabled() {
        // Disabled (the default): spans are no-ops.
        reset();
        {
            let _g = span(slot::HK_BFS);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(nanos(slot::HK_BFS), 0);

        // Enabled: the span's elapsed time lands in its cell.  Other tests
        // in this process may add to the cells concurrently, so assert
        // monotonic growth, not exact values.
        enable(true);
        {
            let _g = span(slot::HK_BFS);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        enable(false);
        assert!(nanos(slot::HK_BFS) >= 2_000_000);
    }

    #[test]
    fn slot_registry_is_dense_and_in_range() {
        let all = [
            slot::REDUCE,
            slot::ALGORITHM2,
            slot::PROMOTE,
            slot::CENSUS,
            slot::JUMP,
            slot::HK_BFS,
            slot::HK_DFS,
            slot::HK_AUGMENT,
        ];
        assert_eq!(all.len(), PHASE_SLOTS);
        for (i, &s) in all.iter().enumerate() {
            assert_eq!(s, i);
        }
    }
}
