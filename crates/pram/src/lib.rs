//! PRAM-style parallel primitives with work/depth instrumentation.
//!
//! The NC algorithms of Hu & Garg (2020) are stated for a CREW/CRCW PRAM.
//! On a real shared-memory machine we cannot execute a PRAM directly, so this
//! crate provides the substitution described in `DESIGN.md`:
//!
//! * every algorithm is organised as a sequence of *synchronous rounds*
//!   (a round is one "parallel step" of the PRAM program);
//! * inside a round, work is executed with [rayon] data parallelism;
//! * a [`DepthTracker`] records how many rounds were executed (the *depth*)
//!   and how many elementary operations were performed (the *work*), so the
//!   complexity claims of the paper (polylogarithmic depth, polynomial work)
//!   can be verified empirically by the benchmark harness.
//!
//! The crate also implements the classic PRAM building blocks the paper
//! relies on:
//!
//! * [`scan`] — parallel prefix sums over an arbitrary associative operation,
//!   used for list compaction (Section VI of the paper compresses reduced
//!   preference lists "using parallel prefix sum technique");
//! * [`pointer`] — pointer jumping / pointer doubling, used to find maximal
//!   paths of degree-2 vertices in Algorithm 2 ("the doubling trick") and to
//!   locate roots and cycle representatives in pseudoforests;
//! * [`compact`] — stream compaction and parallel filtering built on scans;
//! * [`reduce`] — parallel reductions (sum / min / max / argmin / argmax);
//! * [`scheduler`] — a small helper for writing round-synchronous loops with
//!   automatic depth accounting.
//!
//! # Example
//!
//! ```
//! use pm_pram::{scan::prefix_sum_exclusive, tracker::DepthTracker};
//!
//! let tracker = DepthTracker::new();
//! let xs = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
//! let (prefix, total) = prefix_sum_exclusive(&xs, &tracker);
//! assert_eq!(prefix, vec![0, 3, 4, 8, 9, 14, 23, 25]);
//! assert_eq!(total, 31);
//! assert!(tracker.stats().depth >= 1);
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the `prefetch` module scopes one `allow` for
// the platform prefetch intrinsic (a pure cache hint — no memory is read or
// written through it); everything else in the crate remains safe code.
#![deny(unsafe_code)]

pub mod compact;
pub mod idx;
pub mod phaseclock;
pub mod pointer;
pub mod prefetch;
pub mod reduce;
pub mod scan;
pub mod scheduler;
pub mod tracker;
pub mod tune;
pub mod workspace;

pub use compact::{
    compact_indices, compact_indices_fused_into_idx, compact_indices_into,
    compact_indices_into_idx, compact_with,
};
pub use idx::Idx;
pub use pointer::{
    list_rank, min_label_cycles, min_label_cycles_idx, pointer_jump_roots, pointer_jump_roots_into,
    pointer_jump_roots_into_idx, PointerJumpResult,
};
pub use prefetch::{prefetch_read, PREFETCH_DIST};
pub use reduce::{par_argmax, par_argmin, par_max, par_min, par_sum};
pub use scan::{
    csr_offsets, csr_offsets_census_into_u32, csr_offsets_into, csr_offsets_into_u32,
    offsets_from_counts, offsets_from_counts_into, prefix_scan_exclusive, prefix_scan_inclusive,
    prefix_sum_exclusive, prefix_sum_inclusive, DegreeCensus,
};
pub use scheduler::RoundScheduler;
pub use tracker::{DepthTracker, LocalWork, PramStats};
pub use workspace::{EpochMap, EpochMarks, Workspace};

/// The threshold below which the primitives fall back to a purely sequential
/// implementation.  Parallelising tiny inputs costs more than it saves; the
/// outputs are identical either way.
pub const SEQUENTIAL_CUTOFF: usize = 2048;

/// Chunk length for blocked parallel passes over `len` elements: ceil-divides
/// the input over the pool's fan-out (threads × a small over-partition
/// factor) and clamps to `min_chunk` from below.
///
/// The ceil division guarantees the partition never produces a degenerate
/// trailing chunk beyond the intended fan-out, and the `min_chunk` clamp
/// keeps small inputs in a handful of chunks (or one), so tiny instances do
/// not pay fan-out overhead and no chunk is ever empty.  The result depends
/// only on `len` and the configured thread count — never on scheduling — so
/// chunked algorithms built on it stay deterministic; with an associative
/// combining operator the outputs are identical for every thread count.
pub fn par_chunk_len(len: usize, min_chunk: usize) -> usize {
    let fan_out = (rayon::current_num_threads() * 4).max(1);
    len.div_ceil(fan_out).max(min_chunk).max(1)
}

/// Target per-chunk footprint, in bytes, for blocked parallel passes.
///
/// The kernels are bandwidth-bound: what amortises fan-out overhead is the
/// number of *bytes* a worker streams per chunk, not the number of elements.
/// 16 KiB keeps a chunk comfortably inside L1 while still being ~3 orders of
/// magnitude more work than a chunk claim costs.  For 4-byte elements this
/// reproduces the historical `MIN_CHUNK = 4096` floor exactly, so the u32
/// scan paths keep bit-identical chunk boundaries.
pub const TARGET_CHUNK_BYTES: usize = 16 * 1024;

/// Element-size-aware twin of [`par_chunk_len`]: derives the minimum chunk
/// length from the effective chunk footprint ([`tune::chunk_bytes`] — the
/// `PM_CHUNK_BYTES` override when set, [`TARGET_CHUNK_BYTES`] otherwise) and
/// the element size, so `u8` marks and 8- or 16-byte records chunk to
/// comparable cache footprints instead of a flat element count.  Same
/// determinism guarantee as [`par_chunk_len`]: the result depends only on
/// `len`, `elem_bytes` and the configured thread count (plus the
/// once-per-process tuning knob), never on scheduling.
pub fn par_chunk_len_bytes(len: usize, elem_bytes: usize) -> usize {
    par_chunk_len(len, (tune::chunk_bytes() / elem_bytes.max(1)).max(1))
}
