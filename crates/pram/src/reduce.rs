//! Parallel reductions with depth accounting.
//!
//! Reductions (sum, min, max, argmin, argmax) are single-round parallel
//! steps on a PRAM (logarithmic depth in the strict circuit sense, charged
//! here as `⌈log₂ n⌉` depth to stay faithful to the model).  Algorithm 3 uses
//! them to pick, per tree component, the switching path with the largest
//! margin.

use rayon::prelude::*;

use crate::tracker::DepthTracker;
use crate::SEQUENTIAL_CUTOFF;

fn charge(n: usize, tracker: &DepthTracker) {
    let depth = if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    };
    tracker.rounds(depth.max(1));
    tracker.work(n as u64);
}

/// Parallel sum of a slice of `u64`.
pub fn par_sum(xs: &[u64], tracker: &DepthTracker) -> u64 {
    charge(xs.len(), tracker);
    if xs.len() >= SEQUENTIAL_CUTOFF {
        xs.par_iter().sum()
    } else {
        xs.iter().sum()
    }
}

/// Parallel minimum; `None` on an empty slice.
pub fn par_min<T: Ord + Copy + Send + Sync>(xs: &[T], tracker: &DepthTracker) -> Option<T> {
    charge(xs.len(), tracker);
    if xs.len() >= SEQUENTIAL_CUTOFF {
        xs.par_iter().copied().min()
    } else {
        xs.iter().copied().min()
    }
}

/// Parallel maximum; `None` on an empty slice.
pub fn par_max<T: Ord + Copy + Send + Sync>(xs: &[T], tracker: &DepthTracker) -> Option<T> {
    charge(xs.len(), tracker);
    if xs.len() >= SEQUENTIAL_CUTOFF {
        xs.par_iter().copied().max()
    } else {
        xs.iter().copied().max()
    }
}

/// Index of the minimum element (ties broken towards the smaller index, so
/// the result is deterministic); `None` on an empty slice.
pub fn par_argmin<T: Ord + Copy + Send + Sync>(xs: &[T], tracker: &DepthTracker) -> Option<usize> {
    charge(xs.len(), tracker);
    if xs.is_empty() {
        return None;
    }
    let better = |a: (usize, T), b: (usize, T)| -> (usize, T) {
        match b.1.cmp(&a.1) {
            std::cmp::Ordering::Less => b,
            std::cmp::Ordering::Equal if b.0 < a.0 => b,
            _ => a,
        }
    };
    if xs.len() >= SEQUENTIAL_CUTOFF {
        xs.par_iter()
            .copied()
            .enumerate()
            .reduce_with(&better)
            .map(|(i, _)| i)
    } else {
        xs.iter()
            .copied()
            .enumerate()
            .fold(None, |acc: Option<(usize, T)>, cur| {
                Some(match acc {
                    None => cur,
                    Some(a) => better(a, cur),
                })
            })
            .map(|(i, _)| i)
    }
}

/// Index of the maximum element (ties broken towards the smaller index);
/// `None` on an empty slice.
pub fn par_argmax<T: Ord + Copy + Send + Sync>(xs: &[T], tracker: &DepthTracker) -> Option<usize> {
    charge(xs.len(), tracker);
    if xs.is_empty() {
        return None;
    }
    let better = |a: (usize, T), b: (usize, T)| -> (usize, T) {
        match b.1.cmp(&a.1) {
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal if b.0 < a.0 => b,
            _ => a,
        }
    };
    if xs.len() >= SEQUENTIAL_CUTOFF {
        xs.par_iter()
            .copied()
            .enumerate()
            .reduce_with(&better)
            .map(|(i, _)| i)
    } else {
        xs.iter()
            .copied()
            .enumerate()
            .fold(None, |acc: Option<(usize, T)>, cur| {
                Some(match acc {
                    None => cur,
                    Some(a) => better(a, cur),
                })
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_extrema() {
        let t = DepthTracker::new();
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(par_sum(&xs, &t), 5050);
        assert_eq!(par_min(&xs, &t), Some(1));
        assert_eq!(par_max(&xs, &t), Some(100));
    }

    #[test]
    fn empty_slices() {
        let t = DepthTracker::new();
        assert_eq!(par_sum(&[], &t), 0);
        assert_eq!(par_min::<u64>(&[], &t), None);
        assert_eq!(par_max::<u64>(&[], &t), None);
        assert_eq!(par_argmin::<u64>(&[], &t), None);
        assert_eq!(par_argmax::<u64>(&[], &t), None);
    }

    #[test]
    fn argmin_argmax_tie_breaking() {
        let t = DepthTracker::new();
        let xs = vec![5, 1, 3, 1, 5];
        assert_eq!(par_argmin(&xs, &t), Some(1));
        assert_eq!(par_argmax(&xs, &t), Some(0));
    }

    #[test]
    fn large_parallel_matches_sequential() {
        let t = DepthTracker::new();
        let xs: Vec<u64> = (0..200_000).map(|i| (i * 48271) % 65537).collect();
        assert_eq!(par_sum(&xs, &t), xs.iter().sum::<u64>());
        assert_eq!(par_min(&xs, &t), xs.iter().copied().min());
        assert_eq!(par_max(&xs, &t), xs.iter().copied().max());
        let am = par_argmax(&xs, &t).unwrap();
        assert_eq!(xs[am], *xs.iter().max().unwrap());
        // Deterministic tie-break towards the first occurrence.
        assert_eq!(am, xs.iter().position(|&x| x == xs[am]).unwrap());
    }

    #[test]
    fn depth_charged_logarithmically() {
        let t = DepthTracker::new();
        let xs: Vec<u64> = (0..1024).collect();
        par_sum(&xs, &t);
        assert_eq!(t.stats().depth, 10);
    }
}
