//! Parallel prefix scans (prefix sums).
//!
//! Prefix sums are the workhorse primitive of PRAM algorithms: the paper uses
//! them to compress soft-deleted preference lists in Algorithm 4 ("we can
//! compress the preference list using parallel prefix sum technique") and we
//! use them throughout for stream compaction and for assigning slots when
//! building graphs in parallel.
//!
//! The implementation is the standard two-pass blocked scan: the input is
//! divided into chunks, each chunk is reduced in parallel, the chunk totals
//! are scanned sequentially (there are only `O(n / chunk)` of them), and a
//! second parallel pass produces the final prefix values.  This is the
//! work-optimal O(n) / depth O(log n) scheme of Blelloch, with the depth
//! charged as two rounds on the [`DepthTracker`].

use rayon::prelude::*;

use crate::tracker::DepthTracker;
use crate::SEQUENTIAL_CUTOFF;

/// Generic exclusive prefix scan under an associative operation `op` with
/// identity `identity`.
///
/// Returns the vector of prefixes (`out[i] = op(x[0], ..., x[i-1])`, with
/// `out[0] = identity`) and the total reduction of the whole input.
///
/// The operation must be associative; it does not need to be commutative.
pub fn prefix_scan_exclusive<T, F>(
    xs: &[T],
    identity: T,
    op: F,
    tracker: &DepthTracker,
) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    tracker.work(xs.len() as u64);
    if xs.is_empty() {
        tracker.round();
        return (Vec::new(), identity);
    }
    if xs.len() < SEQUENTIAL_CUTOFF {
        tracker.round();
        return sequential_exclusive(xs, identity, &op);
    }

    let chunk = crate::par_chunk_len_bytes(xs.len(), std::mem::size_of::<T>());

    // Round 1: reduce each chunk in parallel.
    tracker.round();
    let chunk_totals: Vec<T> = xs
        .par_chunks(chunk)
        .map(|c| {
            let mut acc = c[0].clone();
            for x in &c[1..] {
                acc = op(&acc, x);
            }
            acc
        })
        .collect();

    // Sequential scan over the (few) chunk totals.
    let mut offsets = Vec::with_capacity(chunk_totals.len());
    let mut acc = identity.clone();
    for t in &chunk_totals {
        offsets.push(acc.clone());
        acc = op(&acc, t);
    }
    let total = acc;

    // Round 2: rescan each chunk in parallel, seeded with its offset.
    tracker.round();
    let mut out: Vec<T> = vec![identity; xs.len()];
    out.par_chunks_mut(chunk)
        .zip(xs.par_chunks(chunk))
        .zip(offsets.into_par_iter())
        .for_each(|((o, c), seed)| {
            let mut acc = seed;
            for (oi, x) in o.iter_mut().zip(c.iter()) {
                *oi = acc.clone();
                acc = op(&acc, x);
            }
        });

    (out, total)
}

/// Generic inclusive prefix scan: `out[i] = op(x[0], ..., x[i])`.
pub fn prefix_scan_inclusive<T, F>(xs: &[T], identity: T, op: F, tracker: &DepthTracker) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let (mut ex, _total) = prefix_scan_exclusive(xs, identity, &op, tracker);
    tracker.round();
    tracker.work(xs.len() as u64);
    ex.par_iter_mut().zip(xs.par_iter()).for_each(|(e, x)| {
        *e = op(e, x);
    });
    ex
}

/// Exclusive prefix sum over `u64` values; returns the prefixes and the total.
pub fn prefix_sum_exclusive(xs: &[u64], tracker: &DepthTracker) -> (Vec<u64>, u64) {
    prefix_scan_exclusive(xs, 0u64, |a, b| a + b, tracker)
}

/// Inclusive prefix sum over `u64` values.
pub fn prefix_sum_inclusive(xs: &[u64], tracker: &DepthTracker) -> Vec<u64> {
    prefix_scan_inclusive(xs, 0u64, |a, b| a + b, tracker)
}

/// Exclusive prefix sum over `usize` counts, the form most graph-building
/// code wants (CSR row offsets).  Returns the offsets and the total.
///
/// Scans the counts directly through the generic blocked scan — no widening
/// round-trip, so the only allocation is the output vector itself.
pub fn offsets_from_counts(counts: &[usize], tracker: &DepthTracker) -> (Vec<usize>, usize) {
    prefix_scan_exclusive(counts, 0usize, |a, b| a + b, tracker)
}

/// CSR row-boundary array for the given per-row counts: `n + 1` offsets with
/// `out[i]` the start of row `i` and `out[n]` the total.  Row `i`'s slice of
/// the flat payload is `flat[out[i]..out[i + 1]]` — the form every flat
/// adjacency builder in the workspace consumes.
pub fn csr_offsets(counts: &[usize], tracker: &DepthTracker) -> Vec<usize> {
    let (mut offsets, total) = offsets_from_counts(counts, tracker);
    offsets.push(total);
    offsets
}

/// Allocation-free variant of [`offsets_from_counts`]: writes the exclusive
/// prefix sums into `out` (reusing its capacity) and returns the total.
/// `chunk_scratch` holds the per-chunk totals of the blocked parallel path —
/// hand both buffers out of a [`crate::Workspace`] and a warm call performs
/// no heap allocation.
pub fn offsets_from_counts_into(
    counts: &[usize],
    out: &mut Vec<usize>,
    chunk_scratch: &mut Vec<usize>,
    tracker: &DepthTracker,
) -> usize {
    scan_counts_into(counts, out, chunk_scratch, tracker, false)
}

/// Allocation-free variant of [`csr_offsets`]: writes the `counts.len() + 1`
/// CSR row boundaries into `out` and returns the total.
pub fn csr_offsets_into(
    counts: &[usize],
    out: &mut Vec<usize>,
    chunk_scratch: &mut Vec<usize>,
    tracker: &DepthTracker,
) -> usize {
    scan_counts_into(counts, out, chunk_scratch, tracker, true)
}

/// Shared body of the `_into` count scans.  `with_total_slot` appends the
/// grand total as a final entry (the CSR boundary form).
fn scan_counts_into(
    counts: &[usize],
    out: &mut Vec<usize>,
    chunk_scratch: &mut Vec<usize>,
    tracker: &DepthTracker,
    with_total_slot: bool,
) -> usize {
    let len = counts.len();
    tracker.work(len as u64);
    if len < SEQUENTIAL_CUTOFF {
        tracker.round();
        out.clear();
        out.reserve(len + usize::from(with_total_slot));
        let mut acc = 0usize;
        for &c in counts {
            out.push(acc);
            acc += c;
        }
        if with_total_slot {
            out.push(acc);
        }
        return acc;
    }

    let chunk = crate::par_chunk_len_bytes(len, std::mem::size_of::<usize>());
    let n_chunks = len.div_ceil(chunk);

    // Round 1: per-chunk totals, written in place (no collect).
    tracker.round();
    chunk_scratch.clear();
    chunk_scratch.resize(n_chunks, 0);
    chunk_scratch
        .par_iter_mut()
        .enumerate()
        .with_min_len(1)
        .for_each(|(ci, t)| {
            let s = ci * chunk;
            let e = ((ci + 1) * chunk).min(len);
            *t = counts[s..e].iter().sum();
        });

    // Sequential exclusive scan over the (few) chunk totals.
    let mut acc = 0usize;
    for t in chunk_scratch.iter_mut() {
        let c = *t;
        *t = acc;
        acc += c;
    }
    let total = acc;

    // Round 2: rescan each chunk seeded with its offset.
    tracker.round();
    let out_len = len + usize::from(with_total_slot);
    if out.capacity() < out_len {
        // Cold: a fresh zeroed buffer (calloc fast path) beats growing and
        // memsetting the old one; every cell is overwritten below anyway.
        *out = vec![0; out_len];
    } else {
        out.clear();
        out.resize(out_len, 0);
    }
    out[..len]
        .par_chunks_mut(chunk)
        .zip(counts.par_chunks(chunk))
        .zip(chunk_scratch.par_iter())
        .for_each(|((o, c), &seed)| {
            let mut acc = seed;
            for (oi, &ci) in o.iter_mut().zip(c.iter()) {
                *oi = acc;
                acc += ci;
            }
        });
    if with_total_slot {
        out[len] = total;
    }
    total
}

/// The `u32`-native twin of [`csr_offsets_into`], for the narrowed data
/// path: counts, offsets and the chunk scratch are all 4-byte, halving the
/// bytes the two scan rounds stream.  The caller guarantees (via the
/// instance-size funnel) that the grand total fits in `u32`; debug builds
/// assert it.  Returns the total as `usize`.
pub fn csr_offsets_into_u32(
    counts: &[u32],
    out: &mut Vec<u32>,
    chunk_scratch: &mut Vec<u32>,
    tracker: &DepthTracker,
) -> usize {
    let len = counts.len();
    tracker.work(len as u64);
    if len < SEQUENTIAL_CUTOFF {
        tracker.round();
        out.clear();
        out.reserve(len + 1);
        let mut acc = 0u32;
        for &c in counts {
            out.push(acc);
            acc = acc.checked_add(c).expect("u32 CSR total overflow");
        }
        out.push(acc);
        return acc as usize;
    }

    let chunk = crate::par_chunk_len_bytes(len, std::mem::size_of::<u32>());
    let n_chunks = len.div_ceil(chunk);

    // Round 1: per-chunk totals, written in place.
    tracker.round();
    chunk_scratch.clear();
    chunk_scratch.resize(n_chunks, 0);
    chunk_scratch
        .par_iter_mut()
        .enumerate()
        .with_min_len(1)
        .for_each(|(ci, t)| {
            let s = ci * chunk;
            let e = ((ci + 1) * chunk).min(len);
            let sum: u64 = counts[s..e].iter().map(|&c| u64::from(c)).sum();
            *t = u32::try_from(sum).expect("u32 CSR chunk-total overflow");
        });

    // Sequential exclusive scan over the (few) chunk totals.
    let mut acc = 0u32;
    for t in chunk_scratch.iter_mut() {
        let c = *t;
        *t = acc;
        acc = acc.checked_add(c).expect("u32 CSR total overflow");
    }
    let total = acc;

    // Round 2: rescan each chunk seeded with its offset.
    tracker.round();
    let out_len = len + 1;
    if out.capacity() < out_len {
        *out = vec![0; out_len];
    } else {
        out.clear();
        out.resize(out_len, 0);
    }
    out[..len]
        .par_chunks_mut(chunk)
        .zip(counts.par_chunks(chunk))
        .zip(chunk_scratch.par_iter())
        .for_each(|((o, c), &seed)| {
            let mut acc = seed;
            for (oi, &ci) in o.iter_mut().zip(c.iter()) {
                *oi = acc;
                acc += ci;
            }
        });
    out[len] = total;
    total as usize
}

/// The degree statistics a fused offsets-plus-census scan reports: how many
/// rows have a non-zero count and how many have a count of exactly one.
/// These are the two numbers Algorithm 2's degree-1 peeling loop needs to
/// seed its incremental liveness bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegreeCensus {
    /// Number of rows whose count is non-zero.
    pub nonzero: usize,
    /// Number of rows whose count is exactly one.
    pub ones: usize,
}

/// Fused twin of [`csr_offsets_into_u32`]: builds the CSR row boundaries
/// *and*, in the same sweeps over `counts`, writes `alive[i] = counts[i] != 0`
/// and tallies the [`DegreeCensus`].  The unfused formulation pays a third
/// full traversal of `counts` for the census; here the census rides the scan
/// rounds for free, so each round reads the counts array exactly once.
///
/// Work/depth accounting is bit-identical to [`csr_offsets_into_u32`]: the
/// census is a fused by-product, not an extra PRAM step (the unfused callers
/// never charged their census loop separately).  The census tallies are
/// accumulated with commutative relaxed adds, so they are deterministic at
/// every thread count.  Returns the grand total and the census.
///
/// # Panics
///
/// `alive.len()` must equal `counts.len()`.
pub fn csr_offsets_census_into_u32(
    counts: &[u32],
    out: &mut Vec<u32>,
    chunk_scratch: &mut Vec<u32>,
    alive: &mut [bool],
    tracker: &DepthTracker,
) -> (usize, DegreeCensus) {
    let len = counts.len();
    assert_eq!(alive.len(), len, "alive/counts length mismatch");
    tracker.work(len as u64);
    if len < SEQUENTIAL_CUTOFF {
        tracker.round();
        out.clear();
        out.reserve(len + 1);
        let mut acc = 0u32;
        let mut census = DegreeCensus::default();
        for (&c, al) in counts.iter().zip(alive.iter_mut()) {
            out.push(acc);
            acc = acc.checked_add(c).expect("u32 CSR total overflow");
            *al = c != 0;
            census.nonzero += usize::from(c != 0);
            census.ones += usize::from(c == 1);
        }
        out.push(acc);
        return (acc as usize, census);
    }

    let chunk = crate::par_chunk_len_bytes(len, std::mem::size_of::<u32>());
    let n_chunks = len.div_ceil(chunk);

    // Round 1: per-chunk totals, written in place (identical to the unfused
    // scan — the census rides round 2, where the counts are re-read anyway).
    tracker.round();
    chunk_scratch.clear();
    chunk_scratch.resize(n_chunks, 0);
    chunk_scratch
        .par_iter_mut()
        .enumerate()
        .with_min_len(1)
        .for_each(|(ci, t)| {
            let s = ci * chunk;
            let e = ((ci + 1) * chunk).min(len);
            let sum: u64 = counts[s..e].iter().map(|&c| u64::from(c)).sum();
            *t = u32::try_from(sum).expect("u32 CSR chunk-total overflow");
        });

    // Sequential exclusive scan over the (few) chunk totals.
    let mut acc = 0u32;
    for t in chunk_scratch.iter_mut() {
        let c = *t;
        *t = acc;
        acc = acc.checked_add(c).expect("u32 CSR total overflow");
    }
    let total = acc;

    // Round 2: rescan each chunk seeded with its offset, with the liveness
    // flags and the census folded into the same pass.
    tracker.round();
    let nonzero = std::sync::atomic::AtomicUsize::new(0);
    let ones = std::sync::atomic::AtomicUsize::new(0);
    let out_len = len + 1;
    if out.capacity() < out_len {
        *out = vec![0; out_len];
    } else {
        out.clear();
        out.resize(out_len, 0);
    }
    out[..len]
        .par_chunks_mut(chunk)
        .zip(counts.par_chunks(chunk))
        .zip(alive.par_chunks_mut(chunk))
        .zip(chunk_scratch.par_iter())
        .for_each(|(((o, c), al), &seed)| {
            let mut acc = seed;
            let mut nz = 0usize;
            let mut on = 0usize;
            for ((oi, &ci), ai) in o.iter_mut().zip(c.iter()).zip(al.iter_mut()) {
                *oi = acc;
                acc += ci;
                *ai = ci != 0;
                nz += usize::from(ci != 0);
                on += usize::from(ci == 1);
            }
            nonzero.fetch_add(nz, std::sync::atomic::Ordering::Relaxed);
            ones.fetch_add(on, std::sync::atomic::Ordering::Relaxed);
        });
    out[len] = total;
    let census = DegreeCensus {
        nonzero: nonzero.into_inner(),
        ones: ones.into_inner(),
    };
    (total as usize, census)
}

fn sequential_exclusive<T, F>(xs: &[T], identity: T, op: &F) -> (Vec<T>, T)
where
    T: Clone,
    F: Fn(&T, &T) -> T,
{
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = identity;
    for x in xs {
        out.push(acc.clone());
        acc = op(&acc, x);
    }
    (out, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_exclusive(xs: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_input() {
        let t = DepthTracker::new();
        let (p, total) = prefix_sum_exclusive(&[], &t);
        assert!(p.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn single_element() {
        let t = DepthTracker::new();
        let (p, total) = prefix_sum_exclusive(&[7], &t);
        assert_eq!(p, vec![0]);
        assert_eq!(total, 7);
    }

    #[test]
    fn small_matches_naive() {
        let t = DepthTracker::new();
        let xs = vec![3, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(prefix_sum_exclusive(&xs, &t), naive_exclusive(&xs));
    }

    #[test]
    fn large_matches_naive() {
        let t = DepthTracker::new();
        let xs: Vec<u64> = (0..100_000).map(|i| (i * 2654435761u64) % 97).collect();
        assert_eq!(prefix_sum_exclusive(&xs, &t), naive_exclusive(&xs));
        // Large input goes through the two-round blocked path.
        assert!(t.stats().depth >= 2);
    }

    #[test]
    fn inclusive_is_exclusive_shifted() {
        let t = DepthTracker::new();
        let xs: Vec<u64> = (0..50_000).map(|i| i % 13).collect();
        let inc = prefix_sum_inclusive(&xs, &t);
        let (exc, total) = prefix_sum_exclusive(&xs, &t);
        for i in 0..xs.len() {
            assert_eq!(inc[i], exc[i] + xs[i]);
        }
        assert_eq!(*inc.last().unwrap(), total);
    }

    #[test]
    fn non_commutative_operation_string_concat() {
        // String concatenation is associative but not commutative; the scan
        // must preserve order.
        let t = DepthTracker::new();
        let xs: Vec<String> = (0..3000).map(|i| format!("{},", i % 10)).collect();
        let (scanned, total) =
            prefix_scan_exclusive(&xs, String::new(), |a, b| format!("{a}{b}"), &t);
        let mut acc = String::new();
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(scanned[i], acc, "prefix {i}");
            acc.push_str(x);
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn offsets_from_counts_builds_csr_offsets() {
        let t = DepthTracker::new();
        let counts = vec![2usize, 0, 3, 1];
        let (off, total) = offsets_from_counts(&counts, &t);
        assert_eq!(off, vec![0, 2, 2, 5]);
        assert_eq!(total, 6);
        assert_eq!(csr_offsets(&counts, &t), vec![0, 2, 2, 5, 6]);
        assert_eq!(csr_offsets(&[], &t), vec![0]);
    }

    #[test]
    fn offsets_from_counts_matches_naive_on_large_input() {
        // Exercises the blocked two-round path on native usize counts.
        let t = DepthTracker::new();
        let counts: Vec<usize> = (0..70_000).map(|i| (i * 31) % 11).collect();
        let (off, total) = offsets_from_counts(&counts, &t);
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(off[i], acc, "offset {i}");
            acc += c;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn into_variants_match_allocating_scans() {
        let t = DepthTracker::new();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for n in [0usize, 1, 5, 3000, 70_000] {
            let counts: Vec<usize> = (0..n).map(|i| (i * 31) % 11).collect();
            let total = offsets_from_counts_into(&counts, &mut out, &mut scratch, &t);
            let (want, want_total) = offsets_from_counts(&counts, &t);
            assert_eq!(out, want, "n = {n}");
            assert_eq!(total, want_total);
            let total = csr_offsets_into(&counts, &mut out, &mut scratch, &t);
            assert_eq!(out, csr_offsets(&counts, &t), "n = {n}");
            assert_eq!(total, want_total);
        }
    }

    #[test]
    fn u32_csr_scan_matches_usize_scan() {
        let t = DepthTracker::new();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for n in [0usize, 1, 5, 3000, 70_000] {
            let counts: Vec<usize> = (0..n).map(|i| (i * 31) % 11).collect();
            let counts32: Vec<u32> = counts.iter().map(|&c| c as u32).collect();
            let total = csr_offsets_into_u32(&counts32, &mut out, &mut scratch, &t);
            let want = csr_offsets(&counts, &t);
            let out_usize: Vec<usize> = out.iter().map(|&o| o as usize).collect();
            assert_eq!(out_usize, want, "n = {n}");
            assert_eq!(total, *want.last().unwrap());
        }
    }

    #[test]
    fn census_scan_matches_unfused_scan_plus_census() {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut out_ref = Vec::new();
        let mut scratch_ref = Vec::new();
        for n in [0usize, 1, 5, 3000, 70_000] {
            let counts: Vec<u32> = (0..n).map(|i| ((i * 31) % 11) as u32 % 3).collect();
            let mut alive = vec![false; n];
            let tf = DepthTracker::new();
            let (total, census) =
                csr_offsets_census_into_u32(&counts, &mut out, &mut scratch, &mut alive, &tf);
            let tu = DepthTracker::new();
            let want_total = csr_offsets_into_u32(&counts, &mut out_ref, &mut scratch_ref, &tu);
            assert_eq!(out, out_ref, "n = {n}");
            assert_eq!(total, want_total, "n = {n}");
            assert_eq!(tf.stats(), tu.stats(), "accounting differs at n = {n}");
            let want_nonzero = counts.iter().filter(|&&c| c != 0).count();
            let want_ones = counts.iter().filter(|&&c| c == 1).count();
            assert_eq!(census.nonzero, want_nonzero, "n = {n}");
            assert_eq!(census.ones, want_ones, "n = {n}");
            let want_alive: Vec<bool> = counts.iter().map(|&c| c != 0).collect();
            assert_eq!(alive, want_alive, "n = {n}");
        }
    }

    #[test]
    fn max_scan_monoid() {
        let t = DepthTracker::new();
        let xs: Vec<u64> = vec![1, 5, 3, 9, 2, 9, 11, 0];
        let inc = prefix_scan_inclusive(&xs, u64::MIN, |a, b| *a.max(b), &t);
        assert_eq!(inc, vec![1, 5, 5, 9, 9, 9, 11, 11]);
    }
}
