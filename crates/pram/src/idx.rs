//! The 32-bit index layer of the hot data path.
//!
//! At n = 10⁶ every headline pipeline in this repository is memory-bandwidth
//! bound: the flat CSR arrays, the pointer-jumping double buffers and the
//! sentinel match arrays are all *indices into dense arrays*, and hauling
//! them through the cache hierarchy as 8-byte `usize` wastes half the bus.
//! [`Idx`] is a `#[repr(transparent)]` `u32` newtype that every hot array is
//! typed with instead:
//!
//! * the all-ones pattern [`Idx::NONE`] is the universal sentinel ("no
//!   successor", "unmatched", "unassigned"), replacing both `usize::MAX`
//!   sentinels and 16-byte `Option<usize>` cells;
//! * conversions are explicit — [`Idx::new`] (debug-asserted),
//!   [`Idx::try_new`] (checked) and [`Idx::get`] — so a silent truncation
//!   can never slip into an array write;
//! * `&array[idx]` indexes slices directly (an `Index<Idx>` impl), keeping
//!   the kernels readable.
//!
//! Instance construction is the single funnel where sizes enter the system:
//! `pm_popular::PrefInstance` rejects anything whose entity or edge counts
//! would not fit (see [`Idx::MAX_INDEX`]), so every layer below may assume
//! indices fit in 32 bits without re-checking.

use std::fmt;

/// A 32-bit index into a dense array, with [`Idx::NONE`] as the sentinel.
///
/// `Idx` deliberately implements neither `From<usize>` nor arithmetic —
/// conversions go through the named constructors so each narrowing point is
/// visible in the code.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(transparent)]
pub struct Idx(u32);

impl Idx {
    /// The sentinel value (all ones).  Never a valid index: constructors
    /// reject `u32::MAX`, so a round-trip through `new`/`get` can never
    /// collide with it.
    pub const NONE: Idx = Idx(u32::MAX);

    /// The largest representable index, `u32::MAX - 1` (the all-ones
    /// pattern is reserved for [`Idx::NONE`]).
    pub const MAX_INDEX: usize = u32::MAX as usize - 1;

    /// The index 0.
    pub const ZERO: Idx = Idx(0);

    /// Wraps a `usize` index.
    ///
    /// # Panics
    /// Debug builds panic if `i` exceeds [`Idx::MAX_INDEX`]; release builds
    /// truncate, which the construction-time size checks in `pm_popular`
    /// make unreachable for every array the pipeline touches.
    #[inline(always)]
    pub const fn new(i: usize) -> Idx {
        debug_assert!(i <= Idx::MAX_INDEX, "index exceeds the u32 layer");
        Idx(i as u32)
    }

    /// Checked conversion: `None` if `i` does not fit (i.e. would alias the
    /// sentinel or overflow 32 bits).
    #[inline]
    pub const fn try_new(i: usize) -> Option<Idx> {
        if i <= Idx::MAX_INDEX {
            Some(Idx(i as u32))
        } else {
            None
        }
    }

    /// Wraps a raw `u32` (which is always in range: either a valid index or
    /// the sentinel bit pattern itself).
    #[inline(always)]
    pub const fn from_raw(raw: u32) -> Idx {
        Idx(raw)
    }

    /// The index as a `usize`, for array accesses.
    ///
    /// Calling this on [`Idx::NONE`] returns `u32::MAX as usize` — callers
    /// must test [`is_none`](Idx::is_none) first where the sentinel can
    /// occur (debug builds assert).
    #[inline(always)]
    pub const fn get(self) -> usize {
        debug_assert!(self.0 != u32::MAX, "Idx::get on the NONE sentinel");
        self.0 as usize
    }

    /// The raw `u32` bit pattern (sentinel included).
    #[inline(always)]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// True iff this is the [`Idx::NONE`] sentinel.
    #[inline(always)]
    pub const fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// True iff this is a valid index (not the sentinel).
    #[inline(always)]
    pub const fn is_some(self) -> bool {
        self.0 != u32::MAX
    }

    /// `Option` view: `None` for the sentinel, `Some(index)` otherwise.
    #[inline]
    pub const fn some(self) -> Option<usize> {
        if self.0 == u32::MAX {
            None
        } else {
            Some(self.0 as usize)
        }
    }

    /// From an `Option<usize>` (checked like [`Idx::new`]).
    #[inline]
    pub fn from_option(o: Option<usize>) -> Idx {
        match o {
            Some(i) => Idx::new(i),
            None => Idx::NONE,
        }
    }
}

// Cross-type equality with `usize` (the sentinel equals nothing): lets
// tests and cold paths compare `&[Idx]` slices against plain `&[usize]`
// expectations without conversion boilerplate.
impl PartialEq<usize> for Idx {
    #[inline]
    fn eq(&self, other: &usize) -> bool {
        self.is_some() && self.0 as usize == *other
    }
}

impl PartialEq<Idx> for usize {
    #[inline]
    fn eq(&self, other: &Idx) -> bool {
        other == self
    }
}

impl fmt::Debug for Idx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "Idx::NONE")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Idx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<T> std::ops::Index<Idx> for [T] {
    type Output = T;

    #[inline(always)]
    fn index(&self, i: Idx) -> &T {
        &self[i.get()]
    }
}

impl<T> std::ops::IndexMut<Idx> for [T] {
    #[inline(always)]
    fn index_mut(&mut self, i: Idx) -> &mut T {
        &mut self[i.get()]
    }
}

// `Vec`'s own generic `Index<I: SliceIndex>` impl stops autoderef from
// reaching the slice impls above, so `Vec` gets explicit ones.
impl<T> std::ops::Index<Idx> for Vec<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, i: Idx) -> &T {
        &self.as_slice()[i.get()]
    }
}

impl<T> std::ops::IndexMut<Idx> for Vec<T> {
    #[inline(always)]
    fn index_mut(&mut self, i: Idx) -> &mut T {
        &mut self.as_mut_slice()[i.get()]
    }
}

/// Extends `out` (cleared first) with every index of `0..n` — the identity
/// permutation in `Idx` form, the shape min-label doubling starts from.
pub fn fill_identity(out: &mut Vec<Idx>, n: usize) {
    debug_assert!(n <= Idx::MAX_INDEX + 1);
    out.clear();
    out.extend((0..n as u32).map(Idx));
}

/// Copies a `usize` slice into an `Idx` vector (cleared first), checking
/// every element in debug builds.
pub fn extend_from_usize(out: &mut Vec<Idx>, xs: &[usize]) {
    out.clear();
    out.extend(xs.iter().map(|&x| Idx::new(x)));
}

/// The slice as plain `usize` values (sentinels mapped to `usize::MAX`) —
/// a conversion helper for cold paths and tests.
pub fn to_usize_vec(xs: &[Idx]) -> Vec<usize> {
    xs.iter()
        .map(|&x| if x.is_none() { usize::MAX } else { x.get() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sentinel() {
        assert_eq!(Idx::new(0).get(), 0);
        assert_eq!(Idx::new(Idx::MAX_INDEX).get(), Idx::MAX_INDEX);
        assert!(Idx::NONE.is_none());
        assert!(!Idx::NONE.is_some());
        assert!(Idx::new(7).is_some());
        assert_eq!(Idx::NONE.some(), None);
        assert_eq!(Idx::new(9).some(), Some(9));
        assert_eq!(Idx::try_new(Idx::MAX_INDEX), Some(Idx::new(Idx::MAX_INDEX)));
        assert_eq!(Idx::try_new(Idx::MAX_INDEX + 1), None);
        assert_eq!(Idx::try_new(usize::MAX), None);
        assert_eq!(Idx::from_option(None), Idx::NONE);
        assert_eq!(Idx::from_option(Some(3)), Idx::new(3));
        assert_eq!(Idx::from_raw(u32::MAX), Idx::NONE);
    }

    #[test]
    fn valid_indices_never_collide_with_none() {
        for i in [0usize, 1, 1000, Idx::MAX_INDEX] {
            let idx = Idx::try_new(i).expect("in range");
            assert!(idx.is_some());
            assert_ne!(idx, Idx::NONE);
            assert_eq!(idx.get(), i);
        }
    }

    #[test]
    fn slice_indexing() {
        let xs = [10u64, 20, 30];
        assert_eq!(xs[Idx::new(1)], 20);
        let mut ys = [0u8; 3];
        ys[Idx::new(2)] = 7;
        assert_eq!(ys[2], 7);
    }

    #[test]
    fn helpers() {
        let mut v = Vec::new();
        fill_identity(&mut v, 3);
        assert_eq!(v, vec![Idx::new(0), Idx::new(1), Idx::new(2)]);
        extend_from_usize(&mut v, &[5, 4]);
        assert_eq!(v, vec![Idx::new(5), Idx::new(4)]);
        assert_eq!(to_usize_vec(&[Idx::new(5), Idx::NONE]), vec![5, usize::MAX]);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Idx::new(12)), "12");
        assert_eq!(format!("{:?}", Idx::NONE), "Idx::NONE");
    }

    #[test]
    fn ordering_puts_none_last() {
        let mut v = vec![Idx::NONE, Idx::new(3), Idx::new(0)];
        v.sort();
        assert_eq!(v, vec![Idx::new(0), Idx::new(3), Idx::NONE]);
    }
}
