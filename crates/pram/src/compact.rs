//! Stream compaction (parallel filtering with stable order).
//!
//! Algorithm 4 of the paper soft-deletes entries of the preference matrices
//! and then "compresses the preference list using parallel prefix sum
//! technique"; that compression is exactly the compaction implemented here:
//! given a keep/drop flag per element, compute with a prefix sum the output
//! slot of every kept element and write all of them in one parallel round.

use rayon::prelude::*;

use crate::scan::prefix_sum_exclusive;
use crate::tracker::DepthTracker;
use crate::SEQUENTIAL_CUTOFF;

/// Returns the indices `i` for which `keep(i)` is true, in increasing order,
/// using a prefix-sum based compaction (two scan rounds plus one scatter
/// round on the [`DepthTracker`]).
pub fn compact_indices<F>(n: usize, keep: F, tracker: &DepthTracker) -> Vec<usize>
where
    F: Fn(usize) -> bool + Send + Sync,
{
    let flags: Vec<u64> = if n >= SEQUENTIAL_CUTOFF {
        (0..n).into_par_iter().map(|i| u64::from(keep(i))).collect()
    } else {
        (0..n).map(|i| u64::from(keep(i))).collect()
    };
    tracker.round();
    tracker.work(n as u64);

    let (slots, total) = prefix_sum_exclusive(&flags, tracker);
    let mut out = vec![0usize; total as usize];

    tracker.round();
    tracker.work(n as u64);
    if n >= SEQUENTIAL_CUTOFF {
        // Scatter in parallel: each kept index writes into its private slot.
        // Slots are distinct, so the unzip-free approach below is race-free;
        // we realise it by building (slot, index) pairs and writing them.
        let pairs: Vec<(usize, usize)> = (0..n)
            .into_par_iter()
            .filter(|&i| flags[i] == 1)
            .map(|i| (slots[i] as usize, i))
            .collect();
        for (slot, i) in pairs {
            out[slot] = i;
        }
    } else {
        for i in 0..n {
            if flags[i] == 1 {
                out[slots[i] as usize] = i;
            }
        }
    }
    out
}

/// Compacts the elements of `xs` for which `keep` returns true, preserving
/// their relative order, and returns the surviving elements (cloned).
pub fn compact_with<T, F>(xs: &[T], keep: F, tracker: &DepthTracker) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let idx = compact_indices(xs.len(), |i| keep(&xs[i]), tracker);
    tracker.round();
    tracker.work(idx.len() as u64);
    if idx.len() >= SEQUENTIAL_CUTOFF {
        idx.par_iter().map(|&i| xs[i].clone()).collect()
    } else {
        idx.iter().map(|&i| xs[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let t = DepthTracker::new();
        assert!(compact_indices(0, |_| true, &t).is_empty());
        let empty: Vec<u32> = Vec::new();
        assert!(compact_with(&empty, |_| true, &t).is_empty());
    }

    #[test]
    fn keep_all_and_none() {
        let t = DepthTracker::new();
        let all = compact_indices(10, |_| true, &t);
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        let none = compact_indices(10, |_| false, &t);
        assert!(none.is_empty());
    }

    #[test]
    fn keep_even_indices() {
        let t = DepthTracker::new();
        let idx = compact_indices(9, |i| i % 2 == 0, &t);
        assert_eq!(idx, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn compact_values_preserves_order() {
        let t = DepthTracker::new();
        let xs: Vec<i32> = (0..10_000).map(|i| i * 7 % 23 - 11).collect();
        let got = compact_with(&xs, |&x| x > 0, &t);
        let want: Vec<i32> = xs.iter().copied().filter(|&x| x > 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn large_input_matches_sequential_filter() {
        let t = DepthTracker::new();
        let n = 100_000;
        let idx = compact_indices(n, |i| (i * i) % 7 == 1, &t);
        let want: Vec<usize> = (0..n).filter(|&i| (i * i) % 7 == 1).collect();
        assert_eq!(idx, want);
    }
}
