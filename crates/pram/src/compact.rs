//! Stream compaction (parallel filtering with stable order).
//!
//! Algorithm 4 of the paper soft-deletes entries of the preference matrices
//! and then "compresses the preference list using parallel prefix sum
//! technique"; that compression is exactly the compaction implemented here:
//! given a keep/drop flag per element, compute with a prefix sum the output
//! slot of every kept element and write all of them in one parallel round.

use rayon::prelude::*;

use crate::idx::Idx;
use crate::scan::offsets_from_counts_into;
use crate::tracker::DepthTracker;
use crate::workspace::Workspace;
use crate::SEQUENTIAL_CUTOFF;

/// Returns the indices `i` for which `keep(i)` is true, in increasing order,
/// using a prefix-sum based compaction (two scan rounds plus one scatter
/// round on the [`DepthTracker`]).
pub fn compact_indices<F>(n: usize, keep: F, tracker: &DepthTracker) -> Vec<usize>
where
    F: Fn(usize) -> bool + Send + Sync,
{
    let mut out = Vec::new();
    compact_indices_into(n, keep, &mut out, &mut Workspace::new(), tracker);
    out
}

/// Allocation-free variant of [`compact_indices`]: the flag and slot arrays
/// are checked out of `ws` and the kept indices are written into `out`
/// (capacity reused).  A warm call — same workspace, no larger `n` than any
/// previous call — performs no heap allocation.
pub fn compact_indices_into<F>(
    n: usize,
    keep: F,
    out: &mut Vec<usize>,
    ws: &mut Workspace,
    tracker: &DepthTracker,
) where
    F: Fn(usize) -> bool + Send + Sync,
{
    // Round 1: evaluate the predicate into 0/1 counts.
    tracker.round();
    tracker.work(n as u64);
    let mut flags = ws.take_usize(n, 0);
    if n >= SEQUENTIAL_CUTOFF {
        flags
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, f)| *f = usize::from(keep(i)));
    } else {
        for (i, f) in flags.iter_mut().enumerate() {
            *f = usize::from(keep(i));
        }
    }

    // Scan rounds: each kept element's output slot.
    let mut slots = ws.take_usize_empty();
    let mut chunk_scratch = ws.take_usize_empty();
    let total = offsets_from_counts_into(&flags, &mut slots, &mut chunk_scratch, tracker);

    // Scatter round: slots of kept elements are strictly increasing, so the
    // sequential writes stream through `out` in order.
    tracker.round();
    tracker.work(n as u64);
    out.clear();
    out.resize(total, 0);
    for i in 0..n {
        if flags[i] == 1 {
            out[slots[i]] = i;
        }
    }

    ws.put_usize(flags);
    ws.put_usize(slots);
    ws.put_usize(chunk_scratch);
}

/// The [`Idx`]-typed twin of [`compact_indices_into`], for the narrowed hot
/// path: the flag/slot scratch and the output are all 4-byte, halving the
/// bytes of all three compaction rounds.  `n` must fit the `Idx` range
/// (guaranteed by the instance-size funnel; debug-asserted here).
pub fn compact_indices_into_idx<F>(
    n: usize,
    keep: F,
    out: &mut Vec<Idx>,
    ws: &mut Workspace,
    tracker: &DepthTracker,
) where
    F: Fn(usize) -> bool + Send + Sync,
{
    debug_assert!(n <= Idx::MAX_INDEX + 1);
    // Round 1: evaluate the predicate into 0/1 counts.
    tracker.round();
    tracker.work(n as u64);
    let mut flags = ws.take_u32(n, 0);
    if n >= SEQUENTIAL_CUTOFF {
        flags
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, f)| *f = u32::from(keep(i)));
    } else {
        for (i, f) in flags.iter_mut().enumerate() {
            *f = u32::from(keep(i));
        }
    }

    // Scan rounds: each kept element's output slot (CSR boundaries; the
    // trailing total slot is ignored).
    let mut slots = ws.take_u32_empty();
    let mut chunk_scratch = ws.take_u32_empty();
    let total = crate::scan::csr_offsets_into_u32(&flags, &mut slots, &mut chunk_scratch, tracker);

    // Scatter round.
    tracker.round();
    tracker.work(n as u64);
    out.clear();
    out.resize(total, Idx::ZERO);
    for i in 0..n {
        if flags[i] == 1 {
            out[slots[i] as usize] = Idx::new(i);
        }
    }

    ws.put_u32(flags);
    ws.put_u32(slots);
    ws.put_u32(chunk_scratch);
}

/// Fused twin of [`compact_indices_into_idx`]: same outputs, same work/depth
/// accounting, a fraction of the memory traffic.
///
/// The unfused kernel materialises a full flag array (n × 4 B written, then
/// read twice by the scan) and a full slot array (n × 4 B written, read by
/// the scatter) just to ferry the predicate's verdict between rounds.  The
/// fused kernel re-evaluates the predicate instead of spilling it: pass 1
/// reduces each chunk to a single survivor count, the per-chunk counts are
/// scanned sequentially (there are only `O(n / chunk)` of them), and pass 2
/// streams the kept indices straight into `out` — about 20 bytes per element
/// of flag/slot traffic gone, in exchange for one extra (cheap, cacheable)
/// predicate evaluation.
///
/// The predicate must be pure: it is called up to twice per index and the
/// two calls must agree.  Charges on the [`DepthTracker`] are bit-identical
/// to the unfused kernel on every input size, so the fused and unfused forms
/// are interchangeable under depth/work assertions.
pub fn compact_indices_fused_into_idx<F>(
    n: usize,
    keep: F,
    out: &mut Vec<Idx>,
    ws: &mut Workspace,
    tracker: &DepthTracker,
) where
    F: Fn(usize) -> bool + Send + Sync,
{
    debug_assert!(n <= Idx::MAX_INDEX + 1);
    // Pass 1 (charged like the unfused flag round): predicate evaluation.
    tracker.round();
    tracker.work(n as u64);
    // Scan charge (the unfused kernel's slot scan): work(n) plus one round
    // below the cutoff, two rounds on the blocked path.
    tracker.work(n as u64);
    if n < SEQUENTIAL_CUTOFF {
        tracker.round();
        // Pass 2 (the unfused scatter round): stream the kept indices out.
        tracker.round();
        tracker.work(n as u64);
        out.clear();
        for i in 0..n {
            if keep(i) {
                out.push(Idx::new(i));
            }
        }
        return;
    }

    let chunk = crate::par_chunk_len_bytes(n, std::mem::size_of::<u32>());
    let n_chunks = n.div_ceil(chunk);
    let mut chunk_counts = ws.take_u32_empty();
    chunk_counts.clear();
    chunk_counts.resize(n_chunks, 0);
    {
        let keep = &keep;
        chunk_counts
            .par_iter_mut()
            .enumerate()
            .with_min_len(1)
            .for_each(|(ci, t)| {
                let s = ci * chunk;
                let e = ((ci + 1) * chunk).min(n);
                let mut cnt = 0u32;
                for i in s..e {
                    cnt += u32::from(keep(i));
                }
                *t = cnt;
            });
    }
    // The two blocked-scan rounds of the unfused kernel (chunk reduce +
    // seeded rescan).  The fused pass 1 above already produced the chunk
    // totals, so both rounds collapse to the short sequential scan below —
    // charged identically, executed on `O(n / chunk)` elements.
    tracker.round();
    tracker.round();
    let mut acc = 0u32;
    for t in chunk_counts.iter_mut() {
        let c = *t;
        *t = acc;
        acc += c;
    }
    let total = acc as usize;

    // Pass 2: re-evaluate the predicate and stream the kept indices into
    // `out` in order.  Sequential like the unfused scatter round — but where
    // that round reads the flag and slot arrays back (8 bytes per element),
    // this one touches only the predicate's own inputs and the output.
    tracker.round();
    tracker.work(n as u64);
    out.clear();
    out.resize(total, Idx::ZERO);
    let mut w = 0usize;
    for i in 0..n {
        if keep(i) {
            out[w] = Idx::new(i);
            w += 1;
        }
    }
    debug_assert_eq!(w, total);
    ws.put_u32(chunk_counts);
}

/// Compacts the elements of `xs` for which `keep` returns true, preserving
/// their relative order, and returns the surviving elements (cloned).
pub fn compact_with<T, F>(xs: &[T], keep: F, tracker: &DepthTracker) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let idx = compact_indices(xs.len(), |i| keep(&xs[i]), tracker);
    tracker.round();
    tracker.work(idx.len() as u64);
    if idx.len() >= SEQUENTIAL_CUTOFF {
        idx.par_iter().map(|&i| xs[i].clone()).collect()
    } else {
        idx.iter().map(|&i| xs[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let t = DepthTracker::new();
        assert!(compact_indices(0, |_| true, &t).is_empty());
        let empty: Vec<u32> = Vec::new();
        assert!(compact_with(&empty, |_| true, &t).is_empty());
    }

    #[test]
    fn keep_all_and_none() {
        let t = DepthTracker::new();
        let all = compact_indices(10, |_| true, &t);
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        let none = compact_indices(10, |_| false, &t);
        assert!(none.is_empty());
    }

    #[test]
    fn keep_even_indices() {
        let t = DepthTracker::new();
        let idx = compact_indices(9, |i| i % 2 == 0, &t);
        assert_eq!(idx, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn into_variant_matches_allocating_compaction() {
        let t = DepthTracker::new();
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        for n in [0usize, 1, 9, 3000, 50_000] {
            compact_indices_into(n, |i| i % 3 == 1, &mut out, &mut ws, &t);
            let want: Vec<usize> = (0..n).filter(|&i| i % 3 == 1).collect();
            assert_eq!(out, want, "n = {n}");
        }
    }

    #[test]
    fn idx_variant_matches_usize_variant() {
        let t = DepthTracker::new();
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        for n in [0usize, 1, 9, 3000, 50_000] {
            compact_indices_into_idx(n, |i| i % 3 == 1, &mut out, &mut ws, &t);
            let want: Vec<usize> = (0..n).filter(|&i| i % 3 == 1).collect();
            let got: Vec<usize> = out.iter().map(|i| i.get()).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn fused_variant_matches_unfused_outputs_and_accounting() {
        let mut ws = Workspace::new();
        let mut out_fused = Vec::new();
        let mut out_ref = Vec::new();
        for n in [0usize, 1, 9, 2047, 2048, 3000, 50_000] {
            let tf = DepthTracker::new();
            compact_indices_fused_into_idx(n, |i| i % 3 == 1, &mut out_fused, &mut ws, &tf);
            let tu = DepthTracker::new();
            compact_indices_into_idx(n, |i| i % 3 == 1, &mut out_ref, &mut ws, &tu);
            assert_eq!(out_fused, out_ref, "n = {n}");
            assert_eq!(tf.stats(), tu.stats(), "accounting differs at n = {n}");
        }
    }

    #[test]
    fn compact_values_preserves_order() {
        let t = DepthTracker::new();
        let xs: Vec<i32> = (0..10_000).map(|i| i * 7 % 23 - 11).collect();
        let got = compact_with(&xs, |&x| x > 0, &t);
        let want: Vec<i32> = xs.iter().copied().filter(|&x| x > 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn large_input_matches_sequential_filter() {
        let t = DepthTracker::new();
        let n = 100_000;
        let idx = compact_indices(n, |i| (i * i) % 7 == 1, &t);
        let want: Vec<usize> = (0..n).filter(|&i| (i * i) % 7 == 1).collect();
        assert_eq!(idx, want);
    }
}
