//! Runtime tuning knobs for the bandwidth-bound kernels.
//!
//! DESIGN.md §11 derives compile-time defaults for the two machine-shaped
//! constants — [`TARGET_CHUNK_BYTES`](crate::TARGET_CHUNK_BYTES) for the
//! per-chunk streaming footprint and
//! [`PREFETCH_DIST`](crate::prefetch::PREFETCH_DIST) for the gather-loop
//! lookahead — but the right values depend on the cache hierarchy the
//! binary actually lands on, and the multicore CI runners differ from the
//! single-core dev box.  This module lets a run override either without a
//! recompile:
//!
//! * `PM_CHUNK_BYTES`  — per-chunk footprint in bytes for blocked passes;
//! * `PM_PREFETCH_DIST` — elements of lookahead in the prefetching loops.
//!
//! Both are read **once** per process (first use) and cached, so the hot
//! paths pay a single atomic load when they hoist the value into a local at
//! kernel entry.  Unset or unparsable variables fall back to the compiled-in
//! defaults; values are clamped to sane ranges so a typo cannot produce
//! degenerate chunking.  The bench harness records the effective values in
//! `BENCH_popular.json` (`tuning` object), so every committed trajectory
//! names the configuration that produced it.
//!
//! The knobs only affect timing, never results: chunk boundaries are
//! deterministic for a fixed `(PM_THREADS, PM_CHUNK_BYTES)` pair, and the
//! repo-wide bit-identity property quantifies over executor width with the
//! knobs held fixed, exactly as it always has for the compiled-in values.

use std::sync::OnceLock;

use crate::prefetch::PREFETCH_DIST;
use crate::TARGET_CHUNK_BYTES;

/// Smallest admissible `PM_CHUNK_BYTES`: one cache line.  Anything lower
/// would make chunk-claim overhead dominate the work of the chunk.
pub const MIN_CHUNK_BYTES: usize = 64;

/// Largest admissible `PM_CHUNK_BYTES` (1 GiB): beyond this the "chunk" is
/// the whole input on any realistic instance and the knob is equivalent to
/// sequential execution.
pub const MAX_CHUNK_BYTES: usize = 1 << 30;

/// Largest admissible `PM_PREFETCH_DIST`.  A lookahead past a few thousand
/// elements outruns every L1/L2 on the market; the clamp keeps the
/// speculative `i + dist` index arithmetic comfortably overflow-free.
pub const MAX_PREFETCH_DIST: usize = 4096;

fn env_usize(name: &str, default: usize, lo: usize, hi: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(v) => v.clamp(lo, hi),
            Err(_) => default,
        },
        Err(_) => default,
    }
}

/// Effective per-chunk footprint in bytes: `PM_CHUNK_BYTES` if set, else
/// [`TARGET_CHUNK_BYTES`](crate::TARGET_CHUNK_BYTES).  Cached after the
/// first call.
pub fn chunk_bytes() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        env_usize(
            "PM_CHUNK_BYTES",
            TARGET_CHUNK_BYTES,
            MIN_CHUNK_BYTES,
            MAX_CHUNK_BYTES,
        )
    })
}

/// Effective gather-loop prefetch lookahead in elements: `PM_PREFETCH_DIST`
/// if set, else [`PREFETCH_DIST`](crate::prefetch::PREFETCH_DIST).  Cached
/// after the first call.  The prefetching kernels hoist this into a local
/// once per call, so the per-element cost is unchanged; when the `prefetch`
/// feature is compiled out the lookahead feeds a no-op hint and the loads it
/// would guard are dead-code-eliminated exactly as before.
pub fn prefetch_dist() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| env_usize("PM_PREFETCH_DIST", PREFETCH_DIST, 0, MAX_PREFETCH_DIST))
}

/// Block length, in posts, of the locality layout (DESIGN.md §12): the
/// number of `u32`/[`Idx`](crate::Idx) gather targets that fit one
/// [`chunk_bytes`] window.  The layout pass clusters co-referenced posts
/// into id blocks of this length so that a kernel's random gathers
/// (`counts[f[a]]`, switching-graph root lookups) land in a small set of
/// resident windows instead of striding the whole post array.
pub fn layout_block_len() -> usize {
    (chunk_bytes() / 4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // The test binary does not set the knobs, so the cached values are
        // the compiled-in defaults (other tests may have triggered the
        // caching already — the assertion holds either way).
        assert_eq!(chunk_bytes(), TARGET_CHUNK_BYTES);
        assert_eq!(prefetch_dist(), PREFETCH_DIST);
        assert_eq!(layout_block_len(), TARGET_CHUNK_BYTES / 4);
    }

    #[test]
    fn env_parse_clamps_and_falls_back() {
        assert_eq!(env_usize("PM_TUNE_TEST_UNSET", 7, 1, 100), 7);
        std::env::set_var("PM_TUNE_TEST_A", "50");
        assert_eq!(env_usize("PM_TUNE_TEST_A", 7, 1, 100), 50);
        std::env::set_var("PM_TUNE_TEST_A", "100000");
        assert_eq!(env_usize("PM_TUNE_TEST_A", 7, 1, 100), 100);
        std::env::set_var("PM_TUNE_TEST_A", "0");
        assert_eq!(env_usize("PM_TUNE_TEST_A", 7, 1, 100), 1);
        std::env::set_var("PM_TUNE_TEST_A", "not-a-number");
        assert_eq!(env_usize("PM_TUNE_TEST_A", 7, 1, 100), 7);
        std::env::remove_var("PM_TUNE_TEST_A");
    }
}
