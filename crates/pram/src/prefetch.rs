//! Software prefetch hints for random-index gather loops.
//!
//! The pointer-jumping and switching-graph kernels spend most of their time
//! in `succ[succ[i]]`-shaped gathers: the outer index is sequential (and so
//! free), but the inner load lands on a random cache line and stalls the
//! pipeline for a full memory round-trip.  Because the *address* of the
//! inner load is known one cheap sequential read ahead of time, a software
//! prefetch issued [`PREFETCH_DIST`] elements early overlaps that round-trip
//! with useful work — classic software pipelining for bandwidth-bound loops.
//!
//! [`prefetch_read`] is a pure cache hint: it never reads or writes memory
//! through the pointer, cannot fault, and has no observable effect on any
//! value a kernel computes, so sprinkling it through a deterministic kernel
//! preserves bit-identical outputs and depth/work accounting.  On targets
//! without a stable prefetch intrinsic it compiles to nothing.
//!
//! The intrinsic is **opt-in** via the `prefetch` cargo feature.  Measured
//! on the virtualized single-core dev container, `_mm_prefetch` T0 hints in
//! the headline kernels cost 4–16% of wall time rather than saving any —
//! the hypervisor appears to retire the hint without a useful L1 fill — so
//! the default build compiles every call site to the no-op fallback, and
//! bare-metal runners (the CI multicore leg) turn the feature on.

/// How many elements ahead the gather loops prefetch.
///
/// Large enough to cover a memory round-trip at the loops' per-element cost,
/// small enough that the prefetched line is still resident when the loop
/// arrives.  The value only affects timing, never results.
pub const PREFETCH_DIST: usize = 16;

/// Hints the cache hierarchy to load `slice[index]` for a near-future read.
///
/// Out-of-range indices are ignored (the hint is simply skipped), so callers
/// can pass speculative lookahead indices without guarding.  This is a
/// no-op on architectures where no stable prefetch intrinsic exists.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    #[cfg(all(target_arch = "x86_64", feature = "prefetch"))]
    {
        if index < slice.len() {
            // SAFETY: `index` is in bounds, so the pointer is valid; the
            // prefetch instruction itself performs no memory access — it is
            // a hint the CPU may ignore entirely.
            #[allow(unsafe_code)]
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    slice.as_ptr().add(index).cast::<i8>(),
                );
            }
        }
    }
    #[cfg(not(all(target_arch = "x86_64", feature = "prefetch")))]
    {
        let _ = (slice, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_and_out_of_range_are_both_safe() {
        let xs = [1u32, 2, 3, 4];
        prefetch_read(&xs, 0);
        prefetch_read(&xs, 3);
        prefetch_read(&xs, 4); // out of range: skipped
        prefetch_read(&xs, usize::MAX);
        let empty: [u64; 0] = [];
        prefetch_read(&empty, 0);
    }
}
