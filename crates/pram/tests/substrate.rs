//! Substrate-level tests for the PRAM primitives: every primitive is checked
//! against its obvious sequential counterpart on seeded random inputs, and
//! the `DepthTracker` round counts are confirmed to grow logarithmically —
//! the empirical form of the paper's NC depth claims.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pm_pram::compact::{compact_indices, compact_with};
use pm_pram::pointer::{list_rank, pointer_jump_roots};
use pm_pram::reduce::{par_argmax, par_argmin, par_max, par_min, par_sum};
use pm_pram::scan::{prefix_scan_exclusive, prefix_sum_exclusive, prefix_sum_inclusive};
use pm_pram::tracker::DepthTracker;

/// Sizes spanning both sides of `SEQUENTIAL_CUTOFF` (2048), so both the
/// sequential fallback and the blocked parallel path are exercised.
const SIZES: [usize; 6] = [1, 100, 2047, 2048, 40_000, 130_000];

fn random_vec(rng: &mut StdRng, n: usize, modulus: u64) -> Vec<u64> {
    (0..n).map(|_| rng.random_range(0..modulus)).collect()
}

// ---------------------------------------------------------------- scans ----

#[test]
fn prefix_sums_match_sequential_fold() {
    let mut rng = StdRng::seed_from_u64(0x5CA7);
    for n in SIZES {
        let xs = random_vec(&mut rng, n, 1 << 20);
        let tracker = DepthTracker::new();
        let (exclusive, total) = prefix_sum_exclusive(&xs, &tracker);
        let inclusive = prefix_sum_inclusive(&xs, &tracker);

        let mut acc = 0u64;
        for i in 0..n {
            assert_eq!(exclusive[i], acc, "exclusive prefix {i} of {n}");
            acc += xs[i];
            assert_eq!(inclusive[i], acc, "inclusive prefix {i} of {n}");
        }
        assert_eq!(total, acc, "total of {n}");
    }
}

#[test]
fn generic_scan_respects_order_of_non_commutative_ops() {
    // 2x2 matrix product mod a small prime: associative, non-commutative.
    type M = [u64; 4];
    const P: u64 = 10_007;
    let mul = |a: &M, b: &M| -> M {
        [
            (a[0] * b[0] + a[1] * b[2]) % P,
            (a[0] * b[1] + a[1] * b[3]) % P,
            (a[2] * b[0] + a[3] * b[2]) % P,
            (a[2] * b[1] + a[3] * b[3]) % P,
        ]
    };
    let identity: M = [1, 0, 0, 1];

    let mut rng = StdRng::seed_from_u64(0x3A7);
    for n in [5usize, 2048, 10_000] {
        let xs: Vec<M> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.random_range(0..P)))
            .collect();
        let tracker = DepthTracker::new();
        let (scanned, total) = prefix_scan_exclusive(&xs, identity, mul, &tracker);
        let mut acc = identity;
        for i in 0..n {
            assert_eq!(scanned[i], acc, "prefix {i} of {n}");
            acc = mul(&acc, &xs[i]);
        }
        assert_eq!(total, acc);
    }
}

#[test]
fn scan_depth_is_constant_rounds_regardless_of_size() {
    // The blocked scan is two parallel rounds however large the input gets:
    // depth must not grow with n (that is what makes it a PRAM primitive).
    let mut depths = Vec::new();
    for n in [4096usize, 65_536, 1_048_576] {
        let xs = vec![1u64; n];
        let tracker = DepthTracker::new();
        let _ = prefix_sum_exclusive(&xs, &tracker);
        depths.push(tracker.stats().depth);
    }
    assert!(
        depths.windows(2).all(|w| w[0] == w[1]),
        "scan depth grew with input size: {depths:?}"
    );
}

// ------------------------------------------------------- pointer jumping ----

fn naive_root_dist(parent: &[usize]) -> (Vec<usize>, Vec<u64>) {
    let n = parent.len();
    let mut root = vec![0usize; n];
    let mut dist = vec![0u64; n];
    for v in 0..n {
        let (mut u, mut d) = (v, 0u64);
        while parent[u] != u {
            u = parent[u];
            d += 1;
            assert!((d as usize) <= n, "cycle in generated forest");
        }
        root[v] = u;
        dist[v] = d;
    }
    (root, dist)
}

/// A random rooted pseudoforest in parent-pointer form: a functional graph
/// whose every cycle is a self-loop (the fixed points are the roots).  Built
/// by sampling a random parent for every vertex under a random relabelling,
/// so trees of all shapes (chains, stars, bushy trees) occur.
fn random_rooted_pseudoforest(rng: &mut StdRng, n: usize) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    // rank_of[v] = position of v in the random order; each vertex picks its
    // parent among vertices of strictly smaller rank (or is a root).
    let mut rank_of = vec![0usize; n];
    for (r, &v) in order.iter().enumerate() {
        rank_of[v] = r;
    }
    (0..n)
        .map(|v| {
            let r = rank_of[v];
            if r == 0 || rng.random_range(0..5) == 0 {
                v // root: self-loop
            } else {
                order[rng.random_range(0..r)]
            }
        })
        .collect()
}

#[test]
fn pointer_jumping_matches_naive_on_random_pseudoforests() {
    let mut rng = StdRng::seed_from_u64(0xF0857);
    for n in SIZES {
        let parent = random_rooted_pseudoforest(&mut rng, n);
        let tracker = DepthTracker::new();
        let result = pointer_jump_roots(&parent, &tracker);
        let (root, dist) = naive_root_dist(&parent);
        assert_eq!(result.root, root, "roots for n = {n}");
        assert_eq!(result.dist, dist, "distances for n = {n}");
        // Every reported root really is a fixed point.
        assert!(result.root.iter().all(|&r| parent[r] == r));
    }
}

#[test]
fn pointer_jumping_rounds_are_logarithmic() {
    // Worst case (a single path) at geometrically growing sizes: the round
    // count must track ceil(log2 n), i.e. grow by ~1 per doubling, never
    // linearly.
    let mut prev_rounds = 0u32;
    for k in [10u32, 12, 14, 16, 17] {
        let n = 1usize << k;
        let parent: Vec<usize> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let tracker = DepthTracker::new();
        let result = pointer_jump_roots(&parent, &tracker);
        assert_eq!(result.root, vec![0; n]);
        // Exactly the doubling bound: ceil(log2 n) rounds suffice.
        assert!(
            result.rounds <= k,
            "path of 2^{k} vertices took {} rounds, doubling bound is {k}",
            result.rounds
        );
        assert!(
            result.rounds >= prev_rounds,
            "rounds should be monotone in n"
        );
        prev_rounds = result.rounds;
        // The tracker sees the same logarithmic depth.
        assert!(tracker.stats().depth <= u64::from(k));
    }
}

#[test]
fn list_rank_matches_naive_on_random_lists() {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(0x115);
    for n in [1usize, 17, 2048, 30_000] {
        // A random permutation cut into random segments gives disjoint lists
        // covering all n elements.
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut succ: Vec<Option<usize>> = vec![None; n];
        for w in perm.windows(2) {
            if rng.random_range(0..4) > 0 {
                succ[w[0]] = Some(w[1]);
            }
        }
        let tracker = DepthTracker::new();
        let ranks = list_rank(&succ, &tracker);
        for (v, &rank) in ranks.iter().enumerate() {
            let (mut u, mut d) = (v, 0u64);
            while let Some(s) = succ[u] {
                u = s;
                d += 1;
            }
            assert_eq!(rank, d, "rank of {v} for n = {n}");
        }
    }
}

// ------------------------------------------------------------ compaction ----

#[test]
fn compaction_matches_sequential_filter() {
    let mut rng = StdRng::seed_from_u64(0xC0A7);
    for n in SIZES {
        let keep: Vec<bool> = (0..n).map(|_| rng.random_range(0..3) != 0).collect();
        let tracker = DepthTracker::new();
        let indices = compact_indices(n, |i| keep[i], &tracker);
        let expected: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
        assert_eq!(indices, expected, "indices for n = {n}");

        let values: Vec<u64> = random_vec(&mut rng, n, 1000);
        let survivors = compact_with(&values, |&v| v % 2 == 0, &tracker);
        let expected: Vec<u64> = values.iter().copied().filter(|&v| v % 2 == 0).collect();
        assert_eq!(survivors, expected, "values for n = {n}");
    }
}

// ------------------------------------------------------------ reductions ----

#[test]
fn reductions_match_sequential_folds() {
    let mut rng = StdRng::seed_from_u64(0x2ED);
    for n in SIZES {
        let xs = random_vec(&mut rng, n, 1 << 30);
        let tracker = DepthTracker::new();
        assert_eq!(
            par_sum(&xs, &tracker),
            xs.iter().sum::<u64>(),
            "sum for n = {n}"
        );
        assert_eq!(
            par_min(&xs, &tracker),
            xs.iter().copied().min(),
            "min for n = {n}"
        );
        assert_eq!(
            par_max(&xs, &tracker),
            xs.iter().copied().max(),
            "max for n = {n}"
        );

        let argmin = par_argmin(&xs, &tracker).unwrap();
        let argmax = par_argmax(&xs, &tracker).unwrap();
        // Value-correct and first-occurrence tie-breaking, as documented.
        assert_eq!(xs[argmin], xs.iter().copied().min().unwrap());
        assert_eq!(argmin, xs.iter().position(|&x| x == xs[argmin]).unwrap());
        assert_eq!(xs[argmax], xs.iter().copied().max().unwrap());
        assert_eq!(argmax, xs.iter().position(|&x| x == xs[argmax]).unwrap());
    }
}

#[test]
fn reduction_depth_is_charged_logarithmically() {
    // par_sum charges ceil(log2 n) rounds: doubling n adds exactly one.
    for k in [8u64, 9, 10, 16] {
        let xs = vec![1u64; 1 << k];
        let tracker = DepthTracker::new();
        let _ = par_sum(&xs, &tracker);
        assert_eq!(tracker.stats().depth, k, "depth for n = 2^{k}");
    }
}

#[test]
fn substrate_primitives_are_identical_across_thread_counts() {
    // The primitives reuse double-buffered scratch under concurrent chunk
    // writers; pinning the executor to 1 and 4 threads in-process must
    // yield identical outputs *and* identical depth/work accounting.
    let mut rng = StdRng::seed_from_u64(99);
    let xs: Vec<u64> = (0..10_000).map(|_| rng.random_range(0..1_000)).collect();
    let parent: Vec<usize> = (0..10_000)
        .map(|i| if i == 0 { 0 } else { rng.random_range(0..i) })
        .collect();

    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pools always build");
        pool.install(|| {
            let tracker = DepthTracker::new();
            let scan = prefix_sum_exclusive(&xs, &tracker);
            let jump = pointer_jump_roots(&parent, &tracker);
            let kept = compact_indices(xs.len(), |i| xs[i].is_multiple_of(3), &tracker);
            let sum = par_sum(&xs, &tracker);
            let argmin = par_argmin(&xs, &tracker);
            (scan, jump, kept, sum, argmin, tracker.stats())
        })
    };
    assert_eq!(run(1), run(4));
}
