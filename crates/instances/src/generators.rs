//! Synthetic workload generators for the benchmark harness.
//!
//! The paper motivates popular matchings with house-allocation and
//! resident-matching markets; these generators parameterise the structural
//! knobs that matter for the algorithms: preference-list length, contention
//! on the top posts (how many applicants share an f-post), tie density, the
//! fraction of applicants whose `s(a)` is their last resort (the `A₁`
//! population that drives the maximum-cardinality experiments), and the
//! shape of the pseudoforests used by the cycle-finding experiments.
//! All generators are deterministic given the seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use pm_graph::{BipartiteGraph, FunctionalGraph};
use pm_popular::instance::PrefInstance;
use pm_stable::instance::SmInstance;

/// Common knobs for the preference-list generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of applicants.
    pub num_applicants: usize,
    /// Number of real posts.
    pub num_posts: usize,
    /// Length of each applicant's preference list (clamped to `num_posts`).
    pub list_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A reasonable default: as many posts as applicants, lists of length 5.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            num_applicants: n,
            num_posts: n,
            list_len: 5,
            seed,
        }
    }

    fn clamped_len(&self) -> usize {
        self.list_len.clamp(1, self.num_posts.max(1))
    }
}

/// Uniform random strict preference lists: every applicant ranks a uniform
/// random subset of the posts in uniform random order.
pub fn uniform_strict(cfg: &GeneratorConfig) -> PrefInstance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let len = cfg.clamped_len();
    let lists = (0..cfg.num_applicants)
        .map(|_| random_subset(&mut rng, cfg.num_posts, len))
        .collect();
    PrefInstance::new_strict(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// Master-list instances: there is a global ranking of the posts and every
/// applicant's list is a prefix-biased sample of it, lightly perturbed.
/// This concentrates first choices on few posts (high contention), the
/// regime where popular matchings frequently do not exist.
pub fn master_list(cfg: &GeneratorConfig, swaps: usize) -> PrefInstance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut master: Vec<usize> = (0..cfg.num_posts).collect();
    master.shuffle(&mut rng);
    let len = cfg.clamped_len();
    let lists = (0..cfg.num_applicants)
        .map(|_| {
            // Start from the master prefix and perturb it with a few random
            // replacements drawn from the whole master list (kept O(len) per
            // applicant so huge instances stay cheap to generate).
            let mut list: Vec<usize> = master[..len].to_vec();
            for _ in 0..swaps {
                let i = rng.random_range(0..list.len());
                let candidate = master[rng.random_range(0..master.len())];
                if !list.contains(&candidate) {
                    list[i] = candidate;
                }
            }
            list
        })
        .collect();
    PrefInstance::new_strict(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// Clustered-popularity instances: a fraction of "hot" posts is sampled much
/// more often (roughly Zipf-like contention), the rest uniformly.
pub fn clustered(cfg: &GeneratorConfig, hot_posts: usize) -> PrefInstance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hot = hot_posts.clamp(1, cfg.num_posts);
    let len = cfg.clamped_len();
    let lists = (0..cfg.num_applicants)
        .map(|_| {
            let mut list = Vec::with_capacity(len);
            while list.len() < len {
                let p = if rng.random_range(0..4) < 3 {
                    rng.random_range(0..hot)
                } else {
                    rng.random_range(0..cfg.num_posts)
                };
                if !list.contains(&p) {
                    list.push(p);
                }
            }
            list
        })
        .collect();
    PrefInstance::new_strict(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// Instances guaranteed to admit a popular matching: first choices are a
/// permutation (all f-posts distinct), so matching every applicant to `f(a)`
/// is applicant-complete.  The remaining list entries are uniform.
pub fn solvable(cfg: &GeneratorConfig) -> PrefInstance {
    assert!(
        cfg.num_posts >= cfg.num_applicants,
        "solvable generator needs at least as many posts as applicants"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut firsts: Vec<usize> = (0..cfg.num_posts).collect();
    firsts.shuffle(&mut rng);
    let len = cfg.clamped_len();
    let lists = (0..cfg.num_applicants)
        .map(|a| {
            let mut list = vec![firsts[a]];
            while list.len() < len {
                let p = rng.random_range(0..cfg.num_posts);
                if !list.contains(&p) {
                    list.push(p);
                }
            }
            list
        })
        .collect();
    PrefInstance::new_strict(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// Community-structured instances with **scattered post ids** — the layout
/// pass's headline workload (E23).
///
/// Applicants come in communities of `community` consecutive ids, and every
/// applicant ranks only posts of its own community's window, so the
/// instance has strong *referential* locality.  The post ids, however, are
/// passed through a random bijection ("scatter"), destroying *address*
/// locality: each community's posts are strewn across the whole id space,
/// and every per-post gather in the solve kernels strides the full array.
/// `pm_instances::layout::optimize_layout` recovers contiguous ids from the
/// incidence structure alone, which is exactly the A/B contrast the
/// `layout/*` bench family measures.
///
/// First choices are globally distinct (applicant `a` gets scattered
/// logical post `a`), so the instance always admits a popular matching,
/// like [`solvable`].
pub fn clustered_scattered(cfg: &GeneratorConfig, community: usize) -> PrefInstance {
    assert!(
        cfg.num_posts >= cfg.num_applicants,
        "clustered_scattered needs at least as many posts as applicants"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let len = cfg.clamped_len();
    // Logical → physical post id bijection; everything below works in
    // logical ids and maps through `scatter` at the last moment.
    let mut scatter: Vec<usize> = (0..cfg.num_posts).collect();
    scatter.shuffle(&mut rng);
    let c = community.clamp(len, cfg.num_posts);
    let lists = (0..cfg.num_applicants)
        .map(|a| {
            // The community window in logical id space; the last window is
            // shifted down so every window keeps full width.
            let lo = (a / c * c).min(cfg.num_posts - c);
            let mut list = vec![scatter[a]];
            while list.len() < len {
                let p = scatter[lo + rng.random_range(0..c)];
                if !list.contains(&p) {
                    list.push(p);
                }
            }
            list
        })
        .collect();
    PrefInstance::new_strict(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// Instances with tunable *last-resort pressure*: `a1_fraction` of the
/// applicants rank only posts that are somebody's first choice, making their
/// `s(a)` the last resort (the `A₁` population of Section IV).  First
/// choices are kept distinct so the instance stays solvable and the
/// interesting question is how many `A₁`-applicants a maximum-cardinality
/// popular matching can keep off their last resorts.
pub fn last_resort_pressure(cfg: &GeneratorConfig, a1_fraction: f64) -> PrefInstance {
    assert!(
        cfg.num_posts >= cfg.num_applicants,
        "last_resort_pressure needs at least as many posts as applicants"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.num_applicants;
    let mut firsts: Vec<usize> = (0..cfg.num_posts).collect();
    firsts.shuffle(&mut rng);
    let first_of: Vec<usize> = firsts[..n].to_vec();
    let len = cfg.clamped_len();
    let a1_count = ((n as f64) * a1_fraction).round() as usize;

    let lists = (0..n)
        .map(|a| {
            let mut list = vec![first_of[a]];
            if a < a1_count {
                // A1 applicant: every other entry is some other applicant's
                // first choice (hence an f-post), so s(a) = l(a).
                while list.len() < len.min(n) {
                    let p = first_of[rng.random_range(0..n)];
                    if !list.contains(&p) {
                        list.push(p);
                    }
                }
            } else {
                while list.len() < len {
                    let p = rng.random_range(0..cfg.num_posts);
                    if !list.contains(&p) {
                        list.push(p);
                    }
                }
            }
            list
        })
        .collect();
    PrefInstance::new_strict(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// An instance whose reduced graph is a complete binary tree of the given
/// depth: posts are the tree nodes (even levels are f-posts, odd levels are
/// s-posts), applicants are the tree edges.  Algorithm 2's degree-1 peeling
/// consumes this instance level by level, so the number of peeling rounds
/// grows with the depth ≈ log₂(n) — the worst-case family for the Lemma 2
/// experiment (E4).
pub fn binary_tree_instance(depth: usize) -> PrefInstance {
    // Complete binary tree with 2^(depth+1) - 1 nodes, node 0 the root,
    // children of i at 2i+1 and 2i+2.
    let num_nodes = (1usize << (depth + 1)) - 1;
    let level_of = |i: usize| (usize::BITS - (i + 1).leading_zeros() - 1) as usize;
    let mut lists: Vec<Vec<usize>> = Vec::new();
    for child in 1..num_nodes {
        let parent = (child - 1) / 2;
        // The endpoint on an even level is the f-post (listed first).
        let (f_post, s_post) = if level_of(parent) % 2 == 0 {
            (parent, child)
        } else {
            (child, parent)
        };
        lists.push(vec![f_post, s_post]);
    }
    if lists.is_empty() {
        // depth 0: a single post, a single applicant who only wants it.
        lists.push(vec![0]);
    }
    PrefInstance::new_strict(num_nodes, lists).expect("tree instance is valid")
}

/// Preference lists with ties: each applicant gets `groups` tie groups of
/// roughly equal size drawn from a random subset of the posts.
pub fn with_ties(cfg: &GeneratorConfig, groups: usize) -> PrefInstance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let len = cfg.clamped_len();
    let groups = groups.clamp(1, len);
    let lists = (0..cfg.num_applicants)
        .map(|_| {
            let posts = random_subset(&mut rng, cfg.num_posts, len);
            let per = posts.len().div_ceil(groups);
            posts.chunks(per).map(|c| c.to_vec()).collect::<Vec<_>>()
        })
        .collect();
    PrefInstance::new_with_ties(cfg.num_posts, lists).expect("generator produces valid instances")
}

/// A random bipartite graph with the given edge probability (per pair), with
/// every left vertex guaranteed at least one edge — the workload for the
/// Section V ties reduction and the Hopcroft–Karp referee.
///
/// The graph is generated by sampling `⌊density · n_right⌋` right endpoints
/// per left vertex (so generation is `O(E)`, not `O(n_left · n_right)`).
pub fn random_bipartite(n_left: usize, n_right: usize, density: f64, seed: u64) -> BipartiteGraph {
    assert!(n_right > 0, "need at least one right vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let per_left = ((density * n_right as f64).round() as usize).min(n_right);
    let mut edges = Vec::with_capacity(n_left * (per_left + 1));
    for l in 0..n_left {
        for _ in 0..per_left {
            edges.push((l, rng.random_range(0..n_right)));
        }
        // Guarantee a non-empty neighbourhood.
        edges.push((l, rng.random_range(0..n_right)));
    }
    BipartiteGraph::from_edges(n_left, n_right, &edges)
}

/// A random functional graph (directed pseudoforest): each vertex gets a
/// successor with probability `1 − sink_fraction`, uniformly at random.
pub fn random_functional_graph(n: usize, sink_fraction: f64, seed: u64) -> FunctionalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let succ = (0..n)
        .map(|_| {
            if n == 0 || rng.random_range(0.0..1.0) < sink_fraction {
                None
            } else {
                Some(rng.random_range(0..n))
            }
        })
        .collect();
    FunctionalGraph::new(succ)
}

/// A random stable marriage instance with complete uniformly-random lists.
pub fn random_sm_instance(n: usize, seed: u64) -> SmInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = |_: usize| {
        (0..n)
            .map(|_| {
                let mut l: Vec<usize> = (0..n).collect();
                l.shuffle(&mut rng);
                l
            })
            .collect::<Vec<_>>()
    };
    let men = gen(0);
    let women = gen(1);
    SmInstance::new(men, women)
}

fn random_subset(rng: &mut StdRng, universe: usize, len: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..universe).collect();
    all.shuffle(rng);
    all.truncate(len.min(universe).max(1));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_popular::algorithm1::popular_matching_nc;
    use pm_popular::reduced::ReducedGraph;
    use pm_pram::DepthTracker;

    fn cfg(n: usize) -> GeneratorConfig {
        GeneratorConfig {
            num_applicants: n,
            num_posts: n,
            list_len: 4,
            seed: 42,
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_strict(&cfg(50));
        let b = uniform_strict(&cfg(50));
        assert_eq!(a, b);
        let c = uniform_strict(&GeneratorConfig {
            seed: 43,
            ..cfg(50)
        });
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_and_master_list_shapes() {
        let u = uniform_strict(&cfg(100));
        assert_eq!(u.num_applicants(), 100);
        assert!(u.is_strict());
        for a in 0..100 {
            assert_eq!(u.num_ranks(a), 4);
        }

        // Master lists concentrate first choices: with zero swaps every
        // applicant has the same first choice.
        let m = master_list(&cfg(60), 0);
        let g = ReducedGraph::build_sequential(&m).unwrap();
        assert_eq!(g.f_posts().len(), 1);
        // With a few swaps there is still much more contention than uniform.
        let m2 = master_list(&cfg(60), 3);
        let g2 = ReducedGraph::build_sequential(&m2).unwrap();
        let gu = ReducedGraph::build_sequential(&uniform_strict(&cfg(60))).unwrap();
        assert!(g2.f_posts().len() <= gu.f_posts().len());
    }

    #[test]
    fn clustered_prefers_hot_posts() {
        let c = clustered(&cfg(200), 5);
        let g = ReducedGraph::build_sequential(&c).unwrap();
        // Most applicants' first choice lands in the hot set.
        let hot_firsts = (0..200).filter(|&a| g.f(a) < 5).count();
        assert!(hot_firsts > 120, "hot firsts = {hot_firsts}");
    }

    #[test]
    fn solvable_instances_always_admit_a_popular_matching() {
        for seed in 0..20 {
            let inst = solvable(&GeneratorConfig { seed, ..cfg(40) });
            let t = DepthTracker::new();
            assert!(popular_matching_nc(&inst, &t).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn last_resort_pressure_creates_a1_applicants() {
        let inst = last_resort_pressure(
            &GeneratorConfig {
                list_len: 3,
                ..cfg(50)
            },
            0.5,
        );
        let g = ReducedGraph::build_sequential(&inst).unwrap();
        let a1 = (0..50).filter(|&a| g.s(a) == inst.last_resort(a)).count();
        assert!(a1 >= 20, "a1 = {a1}");
        // Still solvable by construction.
        let t = DepthTracker::new();
        assert!(popular_matching_nc(&inst, &t).is_ok());
    }

    #[test]
    fn clustered_scattered_is_solvable_and_scattered() {
        let inst = clustered_scattered(
            &GeneratorConfig {
                num_applicants: 80,
                num_posts: 100,
                list_len: 4,
                seed: 11,
            },
            16,
        );
        assert_eq!(inst.num_applicants(), 80);
        let t = DepthTracker::new();
        assert!(popular_matching_nc(&inst, &t).is_ok());
        // Scatter destroys address locality: the average per-list id span
        // is a large fraction of the post id space.
        let total_span: usize = (0..80)
            .map(|a| {
                let ids: Vec<usize> = inst.flat_list(a).iter().map(|p| p.get()).collect();
                ids.iter().max().unwrap() - ids.iter().min().unwrap()
            })
            .sum();
        assert!(total_span / 80 > 25, "mean span = {}", total_span / 80);
    }

    #[test]
    fn ties_generator_produces_tied_lists() {
        let inst = with_ties(&cfg(30), 2);
        assert!(!inst.is_strict());
        assert_eq!(inst.num_applicants(), 30);
    }

    #[test]
    fn bipartite_and_functional_generators() {
        let g = random_bipartite(40, 30, 0.1, 7);
        assert_eq!(g.n_left(), 40);
        assert!((0..40).all(|l| g.degree_left(l) >= 1));

        let f = random_functional_graph(100, 0.2, 9);
        assert_eq!(f.n(), 100);
        let sinks = f.sinks().len();
        assert!(sinks > 5 && sinks < 50, "sinks = {sinks}");
    }

    #[test]
    fn sm_generator_produces_valid_instances() {
        let inst = random_sm_instance(20, 3);
        assert_eq!(inst.n(), 20);
        assert!(inst.is_stable(&inst.man_optimal()));
    }
}
