//! The locality layout pass: post relabeling + blocked CSR edge ordering
//! (DESIGN.md §12).
//!
//! The solve kernels are bandwidth-bound, and their remaining waste is
//! *random* gathers — `counts[f[a]]` scatters, switching-graph root
//! lookups, the Hopcroft–Karp referee's per-edge state touches — whose
//! destinations are spread across the whole post array.  Post ids are
//! arbitrary labels, so nothing forces that spread: this pass rewrites a
//! validated [`PrefInstance`] into an isomorphic twin whose labels are
//! chosen for locality.
//!
//! Two transforms compose:
//!
//! 1. **Post relabeling** ([`locality_permutation`]): a degree-ordered BFS
//!    over the applicant–post incidence assigns new ids in discovery order,
//!    so posts co-referenced by the same applicants land in contiguous id
//!    blocks.  A gather sweep over applicants then touches a small set of
//!    [`layout_block_len`](pm_pram::tune::layout_block_len)-sized resident
//!    windows instead of striding the full array.
//! 2. **Blocked edge ordering** ([`apply_permutation`]): within each tie
//!    group of each preference list — the one place entry order is
//!    semantically free — destinations are sorted by relabeled id, i.e. by
//!    post block, so an edge scan walks its blocks monotonically.
//!
//! Both transforms preserve the preference relation exactly (popularity is
//! label-invariant), but they *do* move every min-label tie-break the
//! kernels take, so a solve of the twin returns a possibly different —
//! equally popular — matching.  [`pm_popular::relabel::Relabeled`] maps
//! answers back through the inverse permutation, and the oracles in
//! `pm_popular::verify` check them against the **original** instance; the
//! `tests/layout_equivalence.rs` property suite and the harness's `layout/`
//! family both do so.
//!
//! This is a cold-path pass (O(|E|) time and memory, run once per
//! instance); the snapshot format persists the pair (flag bit 2, see
//! [`crate::snapshot`]) so repeated cold loads skip it entirely.

use pm_popular::error::PopularError;
use pm_popular::instance::PrefInstance;
use pm_popular::relabel::{PostPermutation, Relabeled};
use pm_pram::Idx;

/// Computes the locality permutation of `inst`: a degree-ordered BFS over
/// the applicant–post incidence, assigning new post ids in discovery order.
///
/// Seeds are taken in decreasing incidence degree (ties to the smaller id),
/// so the hottest posts anchor the first blocks; from each seed the BFS
/// alternates post → referencing applicants → their other posts, expanding
/// every applicant's list once.  The result depends only on the instance,
/// never on thread count or scheduling.  Unreferenced posts sort last and
/// keep their relative order.
///
/// # Errors
/// [`PopularError::TooLarge`] through the permutation size funnel (only
/// reachable with a post count at the 32-bit boundary — any validated
/// instance is already inside it).
pub fn locality_permutation(inst: &PrefInstance) -> Result<PostPermutation, PopularError> {
    let n_a = inst.num_applicants();
    let n_p = inst.num_posts();
    let parts = inst.csr_parts();

    // Incidence degree of every post, then the post → applicants transpose
    // in flat CSR form (counts, exclusive prefix, slotted fill).
    let mut degree = vec![0u32; n_p];
    for &p in parts.post_flat {
        degree[p.get()] += 1;
    }
    let mut off = Vec::with_capacity(n_p + 1);
    let mut acc = 0u32;
    off.push(0u32);
    for &d in &degree {
        acc += d;
        off.push(acc);
    }
    let mut cursor = off[..n_p].to_vec();
    let mut apps = vec![0u32; parts.post_flat.len()];
    for a in 0..n_a {
        for &p in inst.flat_list(a) {
            let c = &mut cursor[p.get()];
            apps[*c as usize] = a as u32;
            *c += 1;
        }
    }

    // Seed order: degree descending, id ascending — deterministic.
    let mut seeds: Vec<u32> = (0..n_p as u32).collect();
    seeds.sort_unstable_by(|&x, &y| degree[y as usize].cmp(&degree[x as usize]).then(x.cmp(&y)));

    // BFS: the queue holds posts; applicants are expanded (once each) as
    // they are discovered, pushing their yet-unseen posts in list order.
    let mut new_of_old = vec![Idx::NONE; n_p];
    let mut seen_app = vec![false; n_a];
    let mut queue: Vec<u32> = Vec::with_capacity(n_p);
    let mut next = 0u32;
    for &seed in &seeds {
        if new_of_old[seed as usize].is_some() {
            continue;
        }
        new_of_old[seed as usize] = Idx::from_raw(next);
        next += 1;
        queue.clear();
        queue.push(seed);
        let mut head = 0;
        while head < queue.len() {
            let p = queue[head] as usize;
            head += 1;
            for &a in &apps[off[p] as usize..off[p + 1] as usize] {
                if seen_app[a as usize] {
                    continue;
                }
                seen_app[a as usize] = true;
                for &q in inst.flat_list(a as usize) {
                    if new_of_old[q.get()].is_none() {
                        new_of_old[q.get()] = Idx::from_raw(next);
                        next += 1;
                        queue.push(q.get() as u32);
                    }
                }
            }
        }
    }
    debug_assert_eq!(next as usize, n_p);
    PostPermutation::try_new(new_of_old)
}

/// Rewrites `inst` under `perm`: every preference entry maps to its
/// relabeled post, and within each tie group (where entry order carries no
/// meaning) the destinations are sorted ascending by relabeled id — the
/// blocked CSR edge ordering, since contiguous relabeled ids tile the
/// [`layout_block_len`](pm_pram::tune::layout_block_len)-post blocks.  The
/// rebuilt arrays go back through the full O(|E|) construction validation.
///
/// Strict instances have singleton tie groups, so for them this is a pure
/// relabeling; the list *order* of every applicant is preserved in all
/// cases — only ids change, plus the free intra-group order.
///
/// # Errors
/// [`PopularError::InvalidInstance`] when `perm` does not cover exactly the
/// instance's posts (plus the construction funnel's own errors, unreachable
/// from a validated instance and bijective permutation).
pub fn apply_permutation(
    inst: &PrefInstance,
    perm: &PostPermutation,
) -> Result<PrefInstance, PopularError> {
    if perm.len() != inst.num_posts() {
        return Err(PopularError::InvalidInstance(format!(
            "layout permutation covers {} posts but the instance has {}",
            perm.len(),
            inst.num_posts()
        )));
    }
    let parts = inst.csr_parts();
    let mut post_flat: Vec<Idx> = parts
        .post_flat
        .iter()
        .map(|&p| perm.new_id(p.get()))
        .collect();
    match parts.ties {
        None => PrefInstance::from_strict_csr(parts.num_posts, post_flat, parts.list_off.to_vec()),
        Some(t) => {
            for g in 0..t.group_off.len() - 1 {
                let (lo, hi) = (t.group_off[g] as usize, t.group_off[g + 1] as usize);
                post_flat[lo..hi].sort_unstable();
            }
            PrefInstance::from_csr_parts(
                parts.num_posts,
                post_flat,
                t.rank_flat.clone(),
                parts.list_off.to_vec(),
                t.group_off.to_vec(),
                t.group_idx.to_vec(),
            )
        }
    }
}

/// The full layout pass: [`locality_permutation`] + [`apply_permutation`],
/// returning the relabeled twin paired with its permutation as a
/// [`Relabeled`] — ready for `RelabeledSolver` or for persistence via
/// [`crate::snapshot::write_file_layout`].
pub fn optimize_layout(inst: &PrefInstance) -> Result<Relabeled, PopularError> {
    let perm = locality_permutation(inst)?;
    let twin = apply_permutation(inst, &perm)?;
    Relabeled::new(twin, perm)
}

/// The block a relabeled post id belongs to, at the effective block length
/// (`PM_CHUNK_BYTES`-derived; see
/// [`layout_block_len`](pm_pram::tune::layout_block_len)).  Exposed for
/// tests and diagnostics — the kernels never need it, which is the point:
/// locality comes from the id assignment, not from extra indirection.
pub fn block_of(post: usize) -> usize {
    post / pm_pram::tune::layout_block_len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clustered_scattered, uniform_strict, with_ties, GeneratorConfig};
    use pm_popular::verify::is_popular_characterization;
    use pm_popular::PopularSolver;
    use pm_popular::RelabeledSolver;

    fn cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            num_applicants: 60,
            num_posts: 70,
            list_len: 5,
            seed,
        }
    }

    #[test]
    fn permutation_is_a_bijection_and_groups_communities() {
        let inst = clustered_scattered(&cfg(3), 10);
        let r = optimize_layout(&inst).unwrap();
        let perm = r.permutation();
        assert_eq!(perm.len(), inst.num_posts());
        // Bijection: every relabeled id has exactly one preimage.
        let mut seen = vec![false; perm.len()];
        for old in 0..perm.len() {
            let new = perm.new_id(old).get();
            assert!(!seen[new]);
            seen[new] = true;
            assert_eq!(perm.old_id(new).get(), old);
        }
        // Locality: each applicant's relabeled list span is far below the
        // scattered span (communities of 10 posts in a 70-post id space).
        let orig_span: usize = span_sum(&inst);
        let twin_span: usize = span_sum(r.instance());
        assert!(
            twin_span * 2 < orig_span,
            "relabeled spans {twin_span} not tighter than scattered {orig_span}"
        );
    }

    fn span_sum(inst: &PrefInstance) -> usize {
        (0..inst.num_applicants())
            .map(|a| {
                let ids: Vec<usize> = inst.flat_list(a).iter().map(|p| p.get()).collect();
                ids.iter().max().unwrap() - ids.iter().min().unwrap()
            })
            .sum()
    }

    #[test]
    fn relabeled_solve_is_popular_on_the_original() {
        for seed in [1, 5, 9] {
            let inst = clustered_scattered(&cfg(seed), 10);
            let r = optimize_layout(&inst).unwrap();
            let mut solver = RelabeledSolver::new(0, 0);
            let m = solver.solve(&r).unwrap().clone();
            assert!(m.is_valid(&inst));
            assert!(is_popular_characterization(&inst, &m));
            // Same size as a direct solve (all popular matchings of a
            // strict instance match the same applicants to f/s posts).
            let mut direct = PopularSolver::new(0, 0);
            let d = direct.solve(&inst).unwrap();
            assert_eq!(m.size(&inst), d.size(&inst));
        }
    }

    #[test]
    fn tie_groups_are_block_sorted_and_lists_preserved() {
        let inst = with_ties(&cfg(7), 3);
        let r = optimize_layout(&inst).unwrap();
        let twin = r.instance();
        let perm = r.permutation();
        for a in 0..inst.num_applicants() {
            assert_eq!(inst.num_ranks(a), twin.num_ranks(a));
            for rank in 0..inst.num_ranks(a) {
                // Same group membership under the permutation…
                let mut orig: Vec<usize> = inst
                    .group_slice(a, rank)
                    .iter()
                    .map(|p| perm.new_id(p.get()).get())
                    .collect();
                orig.sort_unstable();
                let twin_g: Vec<usize> =
                    twin.group_slice(a, rank).iter().map(|p| p.get()).collect();
                assert_eq!(orig, twin_g);
                // …and the twin's group is sorted (blocked order).
                assert!(twin_g.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn infeasibility_is_label_invariant() {
        // Uniform instances at this density routinely have no popular
        // matching; whatever the direct solve reports, the layout path
        // must report the same.
        for seed in [2, 4, 6, 8] {
            let inst = uniform_strict(&cfg(seed));
            let r = optimize_layout(&inst).unwrap();
            let mut direct = PopularSolver::new(0, 0);
            let mut layered = RelabeledSolver::new(0, 0);
            let d = direct.solve(&inst).map(|m| m.size(&inst));
            let l = layered.solve(&r).map(|m| m.size(&inst));
            assert_eq!(d, l);
        }
    }

    #[test]
    fn block_of_uses_the_effective_block_length() {
        let b = pm_pram::tune::layout_block_len();
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(b - 1), 0);
        assert_eq!(block_of(b), 1);
    }
}
