//! Instance generators and the paper's worked examples.
//!
//! The evaluation in this reproduction (see `EXPERIMENTS.md`) needs two
//! kinds of inputs:
//!
//! * the paper's own worked examples — the popular matching instance of
//!   Figure 1 and the stable marriage instance of Figure 5 — with their
//!   expected intermediate structures, reproduced exactly ([`paper`]);
//! * synthetic workload families whose structure can be swept by the
//!   benchmarks: uniform random preference lists, master-list (high
//!   contention) lists, clustered-popularity lists, instances guaranteed to
//!   admit a popular matching, instances with tunable last-resort pressure,
//!   random bipartite graphs for the ties reduction, random functional
//!   graphs for the pseudoforest experiments, and random stable marriage
//!   instances ([`generators`]).
//!
//! Two serialisation paths round out the crate (no external format crates
//! required):
//!
//! * [`io`] — a small plain-text format for humans and fixtures, parsed by
//!   a streaming two-pass reader that fills the CSR arrays directly;
//! * [`snapshot`] — a versioned binary snapshot of the validated CSR
//!   arrays, the zero-restructuring cold-start path for large corpora.
//!
//! The [`layout`] module is the locality layout pass (DESIGN.md §12): it
//! relabels posts so co-referenced posts share contiguous id blocks and
//! block-sorts tie-group entries, producing a `pm_popular::Relabeled` twin
//! whose solves cut main-memory traffic; the snapshot format persists the
//! pair so the pass runs once per corpus.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod generators;
pub mod io;
pub mod layout;
pub mod paper;
pub mod snapshot;

pub use churn::ChurnConfig;
pub use generators::GeneratorConfig;
pub use layout::optimize_layout;
pub use paper::{figure1_instance, figure1_popular_matching, figure5_instance};
