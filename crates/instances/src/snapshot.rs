//! A versioned binary snapshot of the validated CSR arrays.
//!
//! The text format in [`io`](crate::io) is for humans and tiny fixtures;
//! this module is the cold-start path for real corpora.  A snapshot is the
//! validated CSR arrays of a [`PrefInstance`] written as flat little-endian
//! sections behind a fixed-size header, so loading is: read the header,
//! funnel the counts through the same `TooLarge` size checks construction
//! uses, verify the byte length implied by the header **before allocating
//! anything proportional**, then fill the flat buffers section by section
//! and hand them to [`PrefInstance::from_csr_parts`] for one O(|E|)
//! validation pass.  No per-applicant restructuring, no nested vectors —
//! the bench harness bounds the loader to one allocation per flat buffer.
//!
//! # Layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "PMCSRSNP"
//! 8       4     format version (u32 LE) — currently 1
//! 12      4     flags (u32 LE) — bit 0: ranks stored as u16
//!                                bit 1: strict instance, derived
//!                                       sections omitted
//!                                bit 2: layout snapshot, post-permutation
//!                                       section appended
//! 16      8     num_posts       (u64 LE)
//! 24      8     num_applicants  (u64 LE)
//! 32      8     num_groups      (u64 LE)
//! 40      8     num_edges       (u64 LE)
//! 48      ...   list_off   (num_applicants + 1) × u32 LE
//!               group_idx  (num_applicants + 1) × u32 LE   [unless strict]
//!               group_off  (num_groups + 1)     × u32 LE   [unless strict]
//!               post_flat  num_edges            × u32 LE
//!               rank_flat  num_edges × u16 or u32 (bit 0)  [unless strict]
//!               perm       num_posts            × u32 LE   [bit 2 only]
//! ```
//!
//! **Layout snapshots** (flag bit 2) persist a locality-optimized twin
//! (`pm_instances::layout`, DESIGN.md §12): the CSR sections hold the
//! *relabeled* instance, and the trailing `perm` section holds the
//! original → relabeled post permutation (its inverse is derived and
//! validated on load).  Cold loads therefore get the blocked layout for
//! free — no re-run of the layout pass — and can map answers back to
//! original post ids.  The plain [`from_bytes`] entry point **rejects**
//! layout snapshots with a typed error rather than silently dropping the
//! permutation (the instance alone answers questions about renamed posts);
//! [`from_bytes_layout`] is the layout-aware reader.
//!
//! **Strict instances** (every tie group a singleton — the dominant shape
//! in practice) fully determine the tie layer: `group_off` is the identity
//! boundary array, `group_idx` equals `list_off`, and the ranks are a
//! per-applicant iota.  `PrefInstance` does not even materialise those
//! arrays for strict instances, and neither does the snapshot: the writer
//! sets flag bit 1 and emits only the list offsets and the posts — roughly
//! 24 bytes per edge down to 8 — and the reader goes through
//! [`PrefInstance::from_strict_csr`], which skips the tie-layer validation
//! scans entirely.  Bit 0 describes the rank *section*; a strict snapshot
//! has none, so bit 0 must be clear and the reader rejects the
//! combination.
//!
//! Everything is little-endian on disk regardless of host order, and the
//! total length is an exact function of the header — a snapshot with the
//! wrong length is rejected as truncated (or trailing-garbage) without
//! being decoded.  Version bumps are explicit: a reader only accepts the
//! versions it knows, and unknown flag bits are rejected rather than
//! ignored, so old readers can never silently misinterpret new layouts.
//! See DESIGN.md §8.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use pm_popular::error::PopularError;
use pm_popular::instance::{check_sizes, PrefInstance, RankArray};
use pm_popular::relabel::PostPermutation;
use pm_pram::Idx;

/// The 8-byte magic number opening every snapshot.
pub const MAGIC: [u8; 8] = *b"PMCSRSNP";

/// The format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Flag bit 0: the rank section holds 2-byte entries.
const FLAG_RANKS_U16: u32 = 1;

/// Flag bit 1: the instance is strict, and the three derivable sections
/// (`group_idx`, `group_off`, `rank_flat`) are omitted from the payload.
const FLAG_STRICT: u32 = 2;

/// Flag bit 2: the snapshot persists a locality layout — the CSR sections
/// hold the relabeled twin and a post-permutation section is appended.
const FLAG_LAYOUT: u32 = 4;

/// All flag bits this build understands.
const KNOWN_FLAGS: u32 = FLAG_RANKS_U16 | FLAG_STRICT | FLAG_LAYOUT;

/// Bytes before the first section.
const HEADER_LEN: usize = 48;

/// Errors reported by the snapshot reader and writer.  Every corruption
/// mode maps to a typed variant — a malformed snapshot can produce an
/// error, never a panic or an oversized allocation.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure (file missing, short write, …).
    Io(std::io::Error),
    /// The first 8 bytes are not the snapshot magic — not a snapshot file.
    BadMagic,
    /// The snapshot declares a format version this build does not read.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The snapshot sets flag bits this build does not understand (a newer
    /// writer's layout extension — refusing is safer than guessing).
    UnknownFlags {
        /// The offending flag word.
        flags: u32,
    },
    /// The byte length does not match what the header implies — a
    /// truncated download or trailing garbage.  Checked before any
    /// proportional allocation, so a hostile header cannot balloon memory.
    LengthMismatch {
        /// The length the header implies.
        expected: u64,
        /// The actual length.
        found: u64,
    },
    /// The decoded arrays fail instance validation (including the
    /// [`PopularError::TooLarge`] size funnel on the header counts).
    Instance(PopularError),
    /// A layout-bearing snapshot (flag bit 2) was handed to the plain
    /// [`from_bytes`] reader.  The CSR sections hold *relabeled* post ids;
    /// dropping the permutation would hand the caller an instance that
    /// answers questions about renamed posts, so the plain reader refuses
    /// — load through [`from_bytes_layout`] instead.
    UnexpectedLayout,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic number"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads version {VERSION})"
                )
            }
            SnapshotError::UnknownFlags { flags } => {
                write!(f, "snapshot sets unknown flag bits {flags:#x}")
            }
            SnapshotError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot is {found} bytes but its header implies {expected} \
                     (truncated file or trailing garbage)"
                )
            }
            SnapshotError::Instance(e) => write!(f, "snapshot holds an invalid instance: {e}"),
            SnapshotError::UnexpectedLayout => {
                write!(
                    f,
                    "snapshot carries a layout permutation section; its post ids are \
                     relabeled — load it with the layout-aware reader (from_bytes_layout / \
                     read_file_layout)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Instance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<PopularError> for SnapshotError {
    fn from(e: PopularError) -> Self {
        SnapshotError::Instance(e)
    }
}

/// Serialises an instance into `w` in the version-1 layout.
pub fn write<W: Write>(inst: &PrefInstance, w: W) -> Result<(), SnapshotError> {
    write_impl(inst, None, w)
}

/// Serialises a layout pair — the relabeled twin plus its original →
/// relabeled post permutation — into `w`, setting flag bit 2 and appending
/// the permutation section.  Rejects (typed) a permutation whose length is
/// not the instance's post count, before writing a byte.
pub fn write_layout<W: Write>(
    inst: &PrefInstance,
    perm: &PostPermutation,
    w: W,
) -> Result<(), SnapshotError> {
    if perm.len() != inst.num_posts() {
        return Err(PopularError::InvalidInstance(format!(
            "layout snapshot: permutation covers {} posts but the instance has {}",
            perm.len(),
            inst.num_posts()
        ))
        .into());
    }
    write_impl(inst, Some(perm), w)
}

fn write_impl<W: Write>(
    inst: &PrefInstance,
    perm: Option<&PostPermutation>,
    mut w: W,
) -> Result<(), SnapshotError> {
    let parts = inst.csr_parts();
    // A strict instance carries no tie layer at all — bit 0 stays clear
    // because there is no rank section for it to describe.
    let (mut flags, num_groups) = match &parts.ties {
        None => (FLAG_STRICT, parts.post_flat.len() as u64),
        Some(t) => (
            if t.rank_flat.is_u16() {
                FLAG_RANKS_U16
            } else {
                0
            },
            t.group_off.len() as u64 - 1,
        ),
    };
    if perm.is_some() {
        flags |= FLAG_LAYOUT;
    }

    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(parts.num_posts as u64).to_le_bytes())?;
    w.write_all(&((parts.list_off.len() - 1) as u64).to_le_bytes())?;
    w.write_all(&num_groups.to_le_bytes())?;
    w.write_all(&(parts.post_flat.len() as u64).to_le_bytes())?;

    write_u32s(&mut w, parts.list_off)?;
    if let Some(t) = &parts.ties {
        write_u32s(&mut w, t.group_idx)?;
        write_u32s(&mut w, t.group_off)?;
    }
    for &p in parts.post_flat {
        w.write_all(&p.raw().to_le_bytes())?;
    }
    if let Some(t) = &parts.ties {
        match t.rank_flat {
            RankArray::U16(v) => {
                for &r in v {
                    w.write_all(&r.to_le_bytes())?;
                }
            }
            RankArray::U32(v) => write_u32s(&mut w, v)?,
        }
    }
    if let Some(perm) = perm {
        for &p in perm.forward() {
            w.write_all(&p.raw().to_le_bytes())?;
        }
    }
    Ok(())
}

fn write_u32s<W: Write>(w: &mut W, xs: &[u32]) -> Result<(), SnapshotError> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// The snapshot as an in-memory byte vector (see [`write`]).
pub fn to_bytes(inst: &PrefInstance) -> Vec<u8> {
    let mut out = Vec::with_capacity(byte_len(inst, false));
    write(inst, &mut out).expect("writing to a Vec cannot fail");
    out
}

/// The layout snapshot as an in-memory byte vector (see [`write_layout`]).
///
/// # Panics
/// If `perm.len() != inst.num_posts()` (the typed-error path of
/// [`write_layout`] — callers serialising to memory hold a constructed
/// layout pair, for which the contract holds by construction).
pub fn to_bytes_layout(inst: &PrefInstance, perm: &PostPermutation) -> Vec<u8> {
    let mut out = Vec::with_capacity(byte_len(inst, true));
    write_layout(inst, perm, &mut out).expect("writing a valid layout pair to a Vec cannot fail");
    out
}

fn byte_len(inst: &PrefInstance, layout: bool) -> usize {
    let parts = inst.csr_parts();
    let base = match &parts.ties {
        None => HEADER_LEN + 4 * (parts.list_off.len() + parts.post_flat.len()),
        Some(t) => {
            let rank_width = if t.rank_flat.is_u16() { 2 } else { 4 };
            HEADER_LEN
                + 4 * (parts.list_off.len() + t.group_idx.len() + t.group_off.len())
                + (4 + rank_width) * parts.post_flat.len()
        }
    };
    base + if layout { 4 * parts.num_posts } else { 0 }
}

/// Deserialises a snapshot from a byte slice, validating it end to end:
/// header checks, the `TooLarge` size funnel, an exact length check
/// *before* any proportional allocation, then the O(|E|) structural
/// validation of [`PrefInstance::from_csr_parts`].
///
/// Rejects layout-bearing snapshots (flag bit 2) with
/// [`SnapshotError::UnexpectedLayout`] — their post ids are relabeled and
/// only meaningful together with the permutation section, which
/// [`from_bytes_layout`] returns.
pub fn from_bytes(bytes: &[u8]) -> Result<PrefInstance, SnapshotError> {
    let (inst, perm) = from_bytes_impl(bytes)?;
    if perm.is_some() {
        return Err(SnapshotError::UnexpectedLayout);
    }
    Ok(inst)
}

/// Layout-aware twin of [`from_bytes`]: returns the decoded instance plus
/// the original → relabeled post permutation when the snapshot carries one
/// (`None` for plain snapshots).  The permutation section goes through
/// [`PostPermutation::try_new`], so a non-bijective or out-of-range map is
/// a typed [`SnapshotError::Instance`] rejection, and the inverse direction
/// comes back materialised for the answer-mapping path.
pub fn from_bytes_layout(
    bytes: &[u8],
) -> Result<(PrefInstance, Option<PostPermutation>), SnapshotError> {
    from_bytes_impl(bytes)
}

fn from_bytes_impl(bytes: &[u8]) -> Result<(PrefInstance, Option<PostPermutation>), SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::LengthMismatch {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let flags = read_u32(bytes, 12);
    if flags & !KNOWN_FLAGS != 0 {
        return Err(SnapshotError::UnknownFlags { flags });
    }
    let ranks_u16 = flags & FLAG_RANKS_U16 != 0;
    let strict = flags & FLAG_STRICT != 0;
    let layout = flags & FLAG_LAYOUT != 0;
    if strict && ranks_u16 {
        // Bit 0 describes the rank section, and a strict snapshot has
        // none.  Accepting the combination would make two distinct byte
        // streams decode to one instance (snapshots are canonical).
        return Err(PopularError::InvalidInstance(
            "strict snapshot sets the rank-width flag but carries no rank section".into(),
        )
        .into());
    }
    let num_posts = read_u64(bytes, 16);
    let num_applicants = read_u64(bytes, 24);
    let num_groups = read_u64(bytes, 32);
    let num_edges = read_u64(bytes, 40);

    // The size funnel runs on the raw header counts, before anything is
    // allocated or even length-checked: oversized counts are a *typed*
    // rejection, identical to the one nested construction produces.
    let to_count = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
    let n_p = to_count(num_posts);
    let n_a = to_count(num_applicants);
    let n_g = to_count(num_groups);
    let n_e = to_count(num_edges);
    check_sizes(n_a, n_p, n_e)?;
    if n_g > n_e {
        // Tie groups are non-empty, so a valid snapshot has at most one
        // group per edge; more means a corrupt (or hostile) header.
        return Err(PopularError::InvalidInstance(format!(
            "snapshot header declares {n_g} tie groups for {n_e} preference entries"
        ))
        .into());
    }
    if strict && n_g != n_e {
        return Err(PopularError::InvalidInstance(format!(
            "strict snapshot declares {n_g} tie groups for {n_e} preference entries \
             (a strict instance has exactly one group per entry)"
        ))
        .into());
    }

    // Exact length check.  All counts are now bounded by the 32-bit layer,
    // so this arithmetic cannot overflow u64.
    let rank_width = if ranks_u16 { 2u64 } else { 4u64 };
    let expected = if strict {
        HEADER_LEN as u64 + 4 * (n_a as u64 + 1) + 4 * n_e as u64
    } else {
        HEADER_LEN as u64
            + 4 * (n_a as u64 + 1)
            + 4 * (n_a as u64 + 1)
            + 4 * (n_g as u64 + 1)
            + 4 * n_e as u64
            + rank_width * n_e as u64
    } + if layout { 4 * n_p as u64 } else { 0 };
    if bytes.len() as u64 != expected {
        return Err(SnapshotError::LengthMismatch {
            expected,
            found: bytes.len() as u64,
        });
    }

    // Fill the flat buffers straight from the sections — one allocation
    // per array, no per-applicant restructuring.
    let mut off = HEADER_LEN;
    let mut take = |n: usize| {
        let s = &bytes[off..off + n];
        off += n;
        s
    };
    let list_off = decode_u32s(take(4 * (n_a + 1)));
    let inst = if strict {
        let post_flat = decode_posts(take(4 * n_e));
        PrefInstance::from_strict_csr(n_p, post_flat, list_off)?
    } else {
        let group_idx = decode_u32s(take(4 * (n_a + 1)));
        let group_off = decode_u32s(take(4 * (n_g + 1)));
        let post_flat = decode_posts(take(4 * n_e));
        let rank_flat = if ranks_u16 {
            RankArray::U16(
                take(2 * n_e)
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        } else {
            RankArray::U32(decode_u32s(take(4 * n_e)))
        };
        PrefInstance::from_csr_parts(n_p, post_flat, rank_flat, list_off, group_off, group_idx)?
    };
    let perm = if layout {
        Some(PostPermutation::try_new(decode_posts(take(4 * n_p)))?)
    } else {
        None
    };
    Ok((inst, perm))
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn decode_posts(bytes: &[u8]) -> Vec<Idx> {
    bytes
        .chunks_exact(4)
        .map(|c| Idx::from_raw(u32::from_le_bytes(c.try_into().unwrap())))
        .collect()
}

/// Writes a snapshot to a file (buffered).
pub fn write_file<P: AsRef<Path>>(inst: &PrefInstance, path: P) -> Result<(), SnapshotError> {
    let mut w = BufWriter::new(File::create(path)?);
    write(inst, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a snapshot from a file.  `std::fs::read` pre-sizes the buffer
/// from the file metadata, so the whole load stays within a handful of
/// allocations (one per flat buffer plus the file read — the bench
/// harness's counting-allocator gate bounds this).
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<PrefInstance, SnapshotError> {
    from_bytes(&std::fs::read(path)?)
}

/// Writes a layout snapshot to a file (buffered; see [`write_layout`]).
pub fn write_file_layout<P: AsRef<Path>>(
    inst: &PrefInstance,
    perm: &PostPermutation,
    path: P,
) -> Result<(), SnapshotError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_layout(inst, perm, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a snapshot from a file through the layout-aware reader (see
/// [`from_bytes_layout`]).
pub fn read_file_layout<P: AsRef<Path>>(
    path: P,
) -> Result<(PrefInstance, Option<PostPermutation>), SnapshotError> {
    from_bytes_layout(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{uniform_strict, with_ties, GeneratorConfig};
    use crate::paper::figure1_instance;

    fn sample_instances() -> Vec<PrefInstance> {
        let mut out = vec![figure1_instance()];
        for seed in [1, 7, 42] {
            let cfg = GeneratorConfig {
                num_applicants: 40,
                num_posts: 35,
                list_len: 6,
                seed,
            };
            out.push(uniform_strict(&cfg));
            out.push(with_ties(&cfg, 3));
        }
        out
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        for inst in sample_instances() {
            let bytes = to_bytes(&inst);
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back, inst);
            // Serialising the reloaded instance reproduces the bytes, so
            // snapshots are a canonical form, not merely value-preserving.
            assert_eq!(to_bytes(&back), bytes);
        }
    }

    #[test]
    fn rank_width_flag_follows_the_store() {
        // Strict snapshots carry no rank section, so bit 0 stays clear.
        let strict = figure1_instance();
        assert!(strict.is_strict());
        assert_eq!(read_u32(&to_bytes(&strict), 12) & FLAG_RANKS_U16, 0);

        // A tied instance with shallow lists uses the 2-byte store.
        let tied = with_ties(
            &GeneratorConfig {
                num_applicants: 12,
                num_posts: 10,
                list_len: 4,
                seed: 3,
            },
            3,
        );
        assert!(!tied.is_strict());
        let bytes = to_bytes(&tied);
        assert_eq!(read_u32(&bytes, 12) & FLAG_RANKS_U16, FLAG_RANKS_U16);
        assert_eq!(from_bytes(&bytes).unwrap(), tied);

        // A list deeper than 2^16 groups — with one genuine tie so the
        // layer is actually stored — forces the 4-byte store through the
        // same write/read path.
        let deep_len = (RankArray::U16_MAX_RANK + 2) as usize;
        let mut groups: Vec<Vec<usize>> = vec![vec![0, 1]];
        groups.extend((2..=deep_len).map(|p| vec![p]));
        let deep = PrefInstance::new_with_ties(deep_len + 1, vec![groups]).unwrap();
        assert!(!deep.is_strict());
        let bytes = to_bytes(&deep);
        assert_eq!(read_u32(&bytes, 12) & (FLAG_RANKS_U16 | FLAG_STRICT), 0);
        assert_eq!(from_bytes(&bytes).unwrap(), deep);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = to_bytes(&figure1_instance());
        for len in 0..bytes.len() {
            match from_bytes(&bytes[..len]) {
                Err(SnapshotError::LengthMismatch { found, .. }) => {
                    assert_eq!(found, len as u64);
                }
                other => panic!("prefix of {len} bytes: expected LengthMismatch, got {other:?}"),
            }
        }
        // Trailing garbage is equally rejected.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            from_bytes(&longer),
            Err(SnapshotError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&figure1_instance());
        bytes[0] ^= 0xff;
        assert!(matches!(from_bytes(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = to_bytes(&figure1_instance());
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut bytes = to_bytes(&figure1_instance());
        let flags = read_u32(&bytes, 12) | 0x8000_0000;
        bytes[12..16].copy_from_slice(&flags.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::UnknownFlags { .. })
        ));
    }

    #[test]
    fn oversized_header_counts_hit_the_toolarge_funnel() {
        // A hostile header declaring 2^40 applicants must be rejected by
        // the size funnel before any proportional allocation is attempted.
        let mut bytes = to_bytes(&figure1_instance());
        bytes[24..32].copy_from_slice(&(1u64 << 40).to_le_bytes());
        match from_bytes(&bytes) {
            Err(SnapshotError::Instance(PopularError::TooLarge { what, .. })) => {
                assert_eq!(what, "applicants");
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Edge count beyond the Idx layer, same funnel.
        let mut bytes = to_bytes(&figure1_instance());
        bytes[40..48].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::Instance(PopularError::TooLarge { .. }))
        ));
        // More groups than edges cannot come from a valid writer.
        let mut bytes = to_bytes(&figure1_instance());
        bytes[32..40].copy_from_slice(&(1u64 << 30).to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
        ));
    }

    #[test]
    fn corrupt_payload_is_a_typed_error() {
        // Flip a post id to the Idx sentinel pattern: structural validation
        // must report it as out-of-range, not panic.  Figure 1 is strict,
        // so its post section follows the list offsets directly; the tied
        // instance exercises the general layout's offset too.
        let strict = figure1_instance();
        assert!(strict.is_strict());
        let tied = with_ties(
            &GeneratorConfig {
                num_applicants: 12,
                num_posts: 10,
                list_len: 4,
                seed: 3,
            },
            3,
        );
        assert!(!tied.is_strict());
        for inst in [strict, tied] {
            let parts = inst.csr_parts();
            let post_section = match &parts.ties {
                None => HEADER_LEN + 4 * parts.list_off.len(),
                Some(t) => HEADER_LEN + 4 * (2 * parts.list_off.len() + t.group_off.len()),
            };
            let mut corrupt = to_bytes(&inst);
            corrupt[post_section..post_section + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(matches!(
                from_bytes(&corrupt),
                Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
            ));
        }
    }

    #[test]
    fn strict_snapshots_omit_the_derived_sections() {
        // A strict instance's snapshot carries only the header, the list
        // offsets and the posts — the group arrays and ranks are rebuilt on
        // load.  An equally sized tied instance is ~3× larger on disk.
        let cfg = GeneratorConfig {
            num_applicants: 40,
            num_posts: 35,
            list_len: 6,
            seed: 11,
        };
        let strict = uniform_strict(&cfg);
        let parts = strict.csr_parts();
        let bytes = to_bytes(&strict);
        assert_eq!(read_u32(&bytes, 12) & FLAG_STRICT, FLAG_STRICT);
        assert_eq!(
            bytes.len(),
            HEADER_LEN + 4 * (parts.list_off.len() + parts.post_flat.len())
        );
        assert!(bytes.len() < to_bytes(&with_ties(&cfg, 3)).len());
        assert_eq!(from_bytes(&bytes).unwrap(), strict);

        // Tied instances never set the flag.
        assert_eq!(
            read_u32(&to_bytes(&with_ties(&cfg, 3)), 12) & FLAG_STRICT,
            0
        );
    }

    #[test]
    fn strict_flag_corruption_is_rejected() {
        let strict = figure1_instance();
        let bytes = to_bytes(&strict);

        // Clearing the strict bit changes the implied payload length, so
        // the file no longer length-checks — rejected before decoding.
        let mut cleared = bytes.clone();
        let flags = read_u32(&cleared, 12) & !FLAG_STRICT;
        cleared[12..16].copy_from_slice(&flags.to_le_bytes());
        assert!(matches!(
            from_bytes(&cleared),
            Err(SnapshotError::LengthMismatch { .. })
        ));

        // A strict header whose group count disagrees with the edge count
        // cannot come from a valid writer.
        let mut skewed = bytes.clone();
        let n_e = read_u64(&skewed, 40);
        skewed[32..40].copy_from_slice(&(n_e - 1).to_le_bytes());
        assert!(matches!(
            from_bytes(&skewed),
            Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
        ));

        // A strict snapshot has no rank section, so setting the rank-width
        // flag on one cannot come from a valid writer either.
        let mut wide = bytes.clone();
        let flags = read_u32(&wide, 12) | FLAG_RANKS_U16;
        wide[12..16].copy_from_slice(&flags.to_le_bytes());
        assert!(matches!(
            from_bytes(&wide),
            Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let inst = figure1_instance();
        let path = std::env::temp_dir().join("pm_snapshot_test.pmsnap");
        write_file(&inst, &path).unwrap();
        let back = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, inst);
        assert!(matches!(
            read_file(std::env::temp_dir().join("pm_snapshot_missing.pmsnap")),
            Err(SnapshotError::Io(_))
        ));
    }

    fn sample_layouts() -> Vec<(PrefInstance, pm_popular::relabel::Relabeled)> {
        let mut out = Vec::new();
        for (seed, tied) in [(1, false), (7, true)] {
            let cfg = GeneratorConfig {
                num_applicants: 40,
                num_posts: 45,
                list_len: 5,
                seed,
            };
            let inst = if tied {
                with_ties(&cfg, 3)
            } else {
                crate::generators::clustered_scattered(&cfg, 8)
            };
            let r = crate::layout::optimize_layout(&inst).unwrap();
            out.push((inst, r));
        }
        out
    }

    #[test]
    fn layout_roundtrip_is_bit_exact_and_canonical() {
        for (_, r) in sample_layouts() {
            let bytes = to_bytes_layout(r.instance(), r.permutation());
            assert_eq!(read_u32(&bytes, 12) & FLAG_LAYOUT, FLAG_LAYOUT);
            let (back, perm) = from_bytes_layout(&bytes).unwrap();
            let perm = perm.expect("layout snapshot returns its permutation");
            assert_eq!(&back, r.instance());
            assert_eq!(&perm, r.permutation());
            // Canonical: re-serialising the decoded pair reproduces the
            // bytes exactly.
            assert_eq!(to_bytes_layout(&back, &perm), bytes);
            // The layout-aware reader also reads plain snapshots.
            let plain = to_bytes(r.instance());
            let (p_inst, p_perm) = from_bytes_layout(&plain).unwrap();
            assert_eq!(&p_inst, r.instance());
            assert!(p_perm.is_none());
        }
    }

    #[test]
    fn plain_reader_rejects_layout_snapshots() {
        let (_, r) = sample_layouts().remove(0);
        let bytes = to_bytes_layout(r.instance(), r.permutation());
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::UnexpectedLayout)
        ));
        // The refusal message points at the layout-aware entry point.
        assert!(SnapshotError::UnexpectedLayout
            .to_string()
            .contains("from_bytes_layout"));
    }

    #[test]
    fn every_layout_truncation_is_a_typed_error() {
        let (_, r) = sample_layouts().remove(0);
        let bytes = to_bytes_layout(r.instance(), r.permutation());
        for len in 0..bytes.len() {
            match from_bytes_layout(&bytes[..len]) {
                Err(SnapshotError::LengthMismatch { found, .. }) => {
                    assert_eq!(found, len as u64);
                }
                other => panic!("prefix of {len} bytes: expected LengthMismatch, got {other:?}"),
            }
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            from_bytes_layout(&longer),
            Err(SnapshotError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn non_bijective_permutation_section_is_rejected() {
        let (_, r) = sample_layouts().remove(0);
        let n_p = r.instance().num_posts();
        let bytes = to_bytes_layout(r.instance(), r.permutation());
        let perm_section = bytes.len() - 4 * n_p;

        // Duplicate entry: copy slot 1's image into slot 0.
        let mut dup = bytes.clone();
        let (a, b) = (perm_section, perm_section + 4);
        dup.copy_within(b..b + 4, a);
        assert!(matches!(
            from_bytes_layout(&dup),
            Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
        ));

        // Out-of-range entry (the Idx sentinel pattern included).
        let mut oob = bytes.clone();
        oob[a..a + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes_layout(&oob),
            Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
        ));
    }

    #[test]
    fn layout_flag_corruption_is_rejected() {
        let (_, r) = sample_layouts().remove(0);
        let bytes = to_bytes_layout(r.instance(), r.permutation());

        // Clearing the layout bit leaves a trailing unexplained section —
        // the implied length no longer matches, rejected before decoding.
        let mut cleared = bytes.clone();
        let flags = read_u32(&cleared, 12) & !FLAG_LAYOUT;
        cleared[12..16].copy_from_slice(&flags.to_le_bytes());
        assert!(matches!(
            from_bytes_layout(&cleared),
            Err(SnapshotError::LengthMismatch { .. })
        ));

        // Setting the bit on a plain snapshot implies a section the file
        // does not have.
        let mut set = to_bytes(r.instance());
        let flags = read_u32(&set, 12) | FLAG_LAYOUT;
        set[12..16].copy_from_slice(&flags.to_le_bytes());
        assert!(matches!(
            from_bytes_layout(&set),
            Err(SnapshotError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn write_layout_rejects_mismatched_permutation() {
        let (_, r) = sample_layouts().remove(0);
        let wrong = pm_popular::relabel::PostPermutation::identity(3).unwrap();
        let mut sink = Vec::new();
        assert!(matches!(
            write_layout(r.instance(), &wrong, &mut sink),
            Err(SnapshotError::Instance(PopularError::InvalidInstance(_)))
        ));
        assert!(sink.is_empty(), "nothing may be written before the check");
    }

    #[test]
    fn layout_file_roundtrip() {
        let (_, r) = sample_layouts().remove(0);
        let path = std::env::temp_dir().join("pm_snapshot_layout_test.pmsnap");
        write_file_layout(r.instance(), r.permutation(), &path).unwrap();
        // The plain file reader refuses; the layout-aware one round-trips.
        assert!(matches!(
            read_file(&path),
            Err(SnapshotError::UnexpectedLayout)
        ));
        let (back, perm) = read_file_layout(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(&back, r.instance());
        assert_eq!(perm.as_ref(), Some(r.permutation()));
    }

    #[test]
    fn errors_display_and_chain() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains("version 9"));
        assert!(SnapshotError::UnknownFlags { flags: 2 }
            .to_string()
            .contains("flag"));
        let e = SnapshotError::LengthMismatch {
            expected: 100,
            found: 7,
        };
        assert!(e.to_string().contains("100"));
        use std::error::Error;
        assert!(SnapshotError::from(PopularError::NoPopularMatching)
            .source()
            .is_some());
    }
}
