//! Churn streams: reproducible sequences of typed preference deltas for
//! exercising the incremental solver (`pm_popular::delta::DeltaSolver`).
//!
//! Two families, mirroring the `served/incremental` workloads in
//! `EXPERIMENTS.md` E21:
//!
//! * [`edit_churn`] — pure `EditPrefList` deltas that keep each applicant's
//!   first choice fixed and reshuffle the tail.  First choices are what
//!   determine the f-post census, so these edits never flip a post's
//!   f-status: they dirty only the edited applicant's component and keep
//!   the warm delta path allocation-free (the harness gates on this).
//! * [`mixed_churn`] — a mix of all five delta types, generated against a
//!   simulated mirror of the instance so every delta is valid at the
//!   moment it is applied.  Post deltas (and applicant re-growth after a
//!   removal) force full rebuilds by design, so this family measures the
//!   honest amortized cost of heterogeneous churn, fallbacks included.

use pm_popular::delta::Delta;
use pm_popular::instance::PrefInstance;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Churn stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// How many deltas to generate.
    pub deltas: usize,
    /// RNG seed; equal configs generate equal streams.
    pub seed: u64,
}

/// Draws a fresh tail for `prefs` (all entries after the fixed first
/// choice): distinct posts from `0..num_posts`, none equal to the first.
fn resample_tail(rng: &mut StdRng, first: usize, len: usize, num_posts: usize) -> Vec<usize> {
    let mut prefs = Vec::with_capacity(len);
    prefs.push(first);
    while prefs.len() < len.min(num_posts) {
        let p = rng.random_range(0..num_posts);
        if !prefs.contains(&p) {
            prefs.push(p);
        }
    }
    prefs
}

/// A pure-edit churn stream against `inst`: every delta is an
/// `EditPrefList` keeping the applicant's first choice and reshuffling the
/// rest of the list (see the module docs for why the first choice is
/// pinned).  The deltas are valid in any order and keep the instance's
/// solvability unchanged for generators with distinct first choices
/// (`pm_instances::generators::solvable`).
pub fn edit_churn(inst: &PrefInstance, cfg: &ChurnConfig) -> Vec<Delta> {
    let n = inst.num_applicants();
    let np = inst.num_posts();
    assert!(n > 0, "edit churn needs at least one applicant");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.deltas)
        .map(|_| {
            let a = rng.random_range(0..n);
            let list = inst.flat_list(a);
            let first = list[0].get();
            Delta::EditPrefList {
                applicant: a,
                prefs: resample_tail(&mut rng, first, list.len(), np),
            }
        })
        .collect()
}

/// A twin of an [`edit_churn`] stream: the same applicants in the same
/// order, each with a freshly resampled tail (seeded by `salt`).
/// Alternating a stream with its twin keeps endless replay statistically
/// identical to fresh churn — each edit draws an independent tail, so the
/// chance that it moves the applicant's reduced edge (and forces a shard
/// re-solve) matches the first pass.  A straight replay of one stream
/// would re-apply tails the instance already has and measure no-ops.
pub fn resampled_twin(inst: &PrefInstance, stream: &[Delta], salt: u64) -> Vec<Delta> {
    let np = inst.num_posts();
    let mut rng = StdRng::seed_from_u64(salt);
    stream
        .iter()
        .map(|d| match d {
            Delta::EditPrefList { applicant, prefs } => Delta::EditPrefList {
                applicant: *applicant,
                prefs: resample_tail(&mut rng, prefs[0], prefs.len(), np),
            },
            other => other.clone(),
        })
        .collect()
}

/// A mixed churn stream: ~60% edits, ~15% applicant additions, ~15%
/// applicant removals, ~5% post additions, ~5% post removals, generated
/// against a simulated mirror so each delta is valid when applied in
/// order.  Additions prefer an unclaimed first choice (keeping components
/// small and the instance solvable); post removals only target posts that
/// are nobody's first choice.
pub fn mixed_churn(inst: &PrefInstance, cfg: &ChurnConfig) -> Vec<Delta> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // The mirror: current lists, post count, and per-post first-choice
    // census (the same census the delta solver maintains).
    let mut lists: Vec<Vec<usize>> = (0..inst.num_applicants())
        .map(|a| inst.flat_list(a).iter().map(|p| p.get()).collect())
        .collect();
    let mut num_posts = inst.num_posts();
    let mut first_count = vec![0u32; num_posts];
    for l in &lists {
        first_count[l[0]] += 1;
    }

    let mut out = Vec::with_capacity(cfg.deltas);
    while out.len() < cfg.deltas {
        let roll = rng.random_range(0..100u32);
        let delta = if roll < 60 || lists.is_empty() {
            if lists.is_empty() {
                // Degenerate mirror (everything removed): re-seed with an add.
                let first = (0..num_posts).find(|&p| first_count[p] == 0).unwrap_or(0);
                let prefs = resample_tail(&mut rng, first, 4.min(num_posts), num_posts);
                first_count[prefs[0]] += 1;
                lists.push(prefs.clone());
                out.push(Delta::AddApplicant { prefs });
                continue;
            }
            let a = rng.random_range(0..lists.len());
            let first = lists[a][0];
            let prefs = resample_tail(&mut rng, first, lists[a].len(), num_posts);
            lists[a] = prefs.clone();
            Delta::EditPrefList {
                applicant: a,
                prefs,
            }
        } else if roll < 75 {
            // Add an applicant, preferring a post nobody has as a first
            // choice so the new component is a fresh star.
            let start = rng.random_range(0..num_posts);
            let first = (0..num_posts)
                .map(|i| (start + i) % num_posts)
                .find(|&p| first_count[p] == 0)
                .unwrap_or(start);
            let len = lists.first().map_or(4, Vec::len).max(2);
            let prefs = resample_tail(&mut rng, first, len, num_posts);
            first_count[prefs[0]] += 1;
            lists.push(prefs.clone());
            Delta::AddApplicant { prefs }
        } else if roll < 90 {
            let a = rng.random_range(0..lists.len());
            first_count[lists[a][0]] -= 1;
            lists.swap_remove(a);
            Delta::RemoveApplicant { applicant: a }
        } else if roll < 95 {
            num_posts += 1;
            first_count.push(0);
            Delta::AddPost
        } else {
            // Remove a post that is nobody's first choice and nobody's
            // only choice (solver-side validation would reject those).
            let candidate = (0..num_posts)
                .rev()
                .find(|&p| first_count[p] == 0 && lists.iter().all(|l| l.len() > 1 || l[0] != p));
            let Some(p) = candidate else {
                continue; // no removable post right now; re-roll
            };
            let last = num_posts - 1;
            for l in &mut lists {
                l.retain(|&q| q != p);
                for q in l.iter_mut() {
                    if *q == last {
                        *q = p;
                    }
                }
            }
            if p != last {
                first_count[p] = first_count[last];
            }
            first_count.pop();
            num_posts -= 1;
            Delta::RemovePost { post: p }
        };
        out.push(delta);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, GeneratorConfig};
    use pm_popular::delta::{DeltaMode, DeltaSolver};
    use pm_popular::PopularSolver;

    fn base(n: usize, seed: u64) -> PrefInstance {
        generators::solvable(&GeneratorConfig {
            num_applicants: n,
            num_posts: n + n / 8 + 1,
            list_len: 5,
            seed,
        })
    }

    #[test]
    fn edit_churn_is_reproducible_and_valid() {
        let inst = base(60, 1);
        let cfg = ChurnConfig {
            deltas: 80,
            seed: 9,
        };
        assert_eq!(edit_churn(&inst, &cfg), edit_churn(&inst, &cfg));
        let mut ds = DeltaSolver::install(&inst, DeltaMode::Popular).unwrap();
        for d in edit_churn(&inst, &cfg) {
            ds.apply(&d).expect("edit churn deltas are always valid");
            ds.flush()
                .expect("first-choice-pinned edits keep solvability");
        }
        // Edits never force a *structural* rebuild (post-set change, slot
        // regrowth): every full solve beyond the install is a dirty-fraction
        // fallback, which small instances legitimately hit as the union-only
        // component overapproximation coarsens between rebuilds.
        assert_eq!(
            ds.stats().full_solves,
            1 + ds.stats().fallback_full_solves,
            "edit churn only rebuilds via the dirty-fraction fallback"
        );
    }

    #[test]
    fn mixed_churn_applies_cleanly_and_matches_fresh_solves() {
        let inst = base(40, 2);
        let cfg = ChurnConfig {
            deltas: 120,
            seed: 5,
        };
        assert_eq!(mixed_churn(&inst, &cfg), mixed_churn(&inst, &cfg));
        let mut ds = DeltaSolver::install(&inst, DeltaMode::Popular).unwrap();
        let mut fresh = PopularSolver::new(0, 0);
        for d in mixed_churn(&inst, &cfg) {
            ds.apply(&d)
                .expect("mirror-validated deltas are always valid");
            let got = ds.flush().map(|m| m.as_slice().to_vec());
            let snap = ds.snapshot_instance().unwrap();
            let want = fresh.solve(&snap).map(|m| m.as_slice().to_vec());
            assert_eq!(got, want);
        }
    }
}
