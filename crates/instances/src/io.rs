//! A self-contained plain-text round-trip for popular-matching instances.
//!
//! No external serialisation crates are needed: an instance is stored as a
//! header line with the post count followed by one line per applicant, with
//! tie groups separated by `|` and posts within a group separated by
//! spaces.  The Figure 1 instance, for example, starts:
//!
//! ```text
//! posts 9
//! 0 | 3 | 4 | 1 | 5
//! 3 | 4 | 6 | 1 | 7
//! ...
//! ```
//!
//! [`text`] wraps an instance in a [`std::fmt::Display`] adapter (so
//! `io::text(&inst).to_string()` — or any `write!` sink — renders it), and
//! [`parse`] reads the format back:
//!
//! ```
//! use pm_instances::{io, paper};
//!
//! let inst = paper::figure1_instance();
//! let round_tripped = io::parse(&io::text(&inst).to_string()).unwrap();
//! assert_eq!(inst, round_tripped);
//! ```

use std::fmt;

use pm_popular::error::PopularError;
use pm_popular::instance::PrefInstance;

/// [`Display`](fmt::Display) adapter rendering an instance in the
/// plain-text format; obtain one via [`text`].
pub struct TextFormat<'a>(&'a PrefInstance);

/// Wraps an instance for plain-text rendering: `text(&inst).to_string()`
/// is the serialised form, and [`parse`] is its inverse.
pub fn text(inst: &PrefInstance) -> TextFormat<'_> {
    TextFormat(inst)
}

impl fmt::Display for TextFormat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "posts {}", self.0.num_posts())?;
        for a in 0..self.0.num_applicants() {
            let mut first_group = true;
            for g in self.0.groups(a) {
                if !first_group {
                    f.write_str(" | ")?;
                }
                first_group = false;
                let mut first_post = true;
                for p in g {
                    if !first_post {
                        f.write_str(" ")?;
                    }
                    first_post = false;
                    write!(f, "{p}")?;
                }
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

/// Parses an instance from the plain-text format (inverse of [`text`]).
pub fn parse(text: &str) -> Result<PrefInstance, PopularError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| PopularError::InvalidInstance("empty instance file".into()))?;
    let num_posts: usize = header
        .strip_prefix("posts ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| PopularError::InvalidInstance(format!("bad header line: {header:?}")))?;

    let mut groups = Vec::new();
    for (i, line) in lines.enumerate() {
        let mut applicant_groups = Vec::new();
        for group in line.split('|') {
            let posts: Result<Vec<usize>, _> = group
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<usize>().map_err(|_| {
                        PopularError::InvalidInstance(format!(
                            "applicant {i}: {tok:?} is not a post id"
                        ))
                    })
                })
                .collect();
            let posts = posts?;
            if !posts.is_empty() {
                applicant_groups.push(posts);
            }
        }
        groups.push(applicant_groups);
    }
    PrefInstance::new_with_ties(num_posts, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{uniform_strict, with_ties, GeneratorConfig};
    use crate::paper::figure1_instance;

    #[test]
    fn roundtrip_paper_instance() {
        let inst = figure1_instance();
        let text = super::text(&inst).to_string();
        let back = parse(&text).unwrap();
        assert_eq!(inst, back);
        assert!(text.starts_with("posts 9\n"));
        assert!(text.contains("0 | 3 | 4 | 1 | 5"));
    }

    #[test]
    fn roundtrip_generated_instances() {
        let cfg = GeneratorConfig {
            num_applicants: 30,
            num_posts: 25,
            list_len: 6,
            seed: 1,
        };
        for inst in [uniform_strict(&cfg), with_ties(&cfg, 3)] {
            let back = parse(&super::text(&inst).to_string()).unwrap();
            assert_eq!(inst, back);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(parse(""), Err(PopularError::InvalidInstance(_))));
        assert!(matches!(
            parse("nonsense\n1 2"),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            parse("posts 2\n0 zebra"),
            Err(PopularError::InvalidInstance(_))
        ));
        // Out-of-range post ids are caught by instance validation.
        assert!(matches!(
            parse("posts 2\n0 5"),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn blank_lines_and_empty_groups_are_ignored() {
        let inst = parse("posts 3\n\n0 | | 1\n\n2\n").unwrap();
        assert_eq!(inst.num_applicants(), 2);
        assert_eq!(inst.groups(0).collect::<Vec<_>>(), vec![&[0][..], &[1][..]]);
        assert_eq!(inst.groups(1).collect::<Vec<_>>(), vec![&[2][..]]);
    }
}
