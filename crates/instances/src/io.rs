//! A small plain-text format for popular-matching instances.
//!
//! No external serialisation crates are needed: an instance is stored as a
//! header line with the post count followed by one line per applicant, with
//! tie groups separated by `|` and posts within a group separated by
//! spaces.  The Figure 1 instance, for example, starts:
//!
//! ```text
//! posts 9
//! 0 | 3 | 4 | 1 | 5
//! 3 | 4 | 6 | 1 | 7
//! ...
//! ```

use pm_popular::error::PopularError;
use pm_popular::instance::PrefInstance;

/// Serialises an instance to the plain-text format.
pub fn to_text(inst: &PrefInstance) -> String {
    let mut out = String::new();
    out.push_str(&format!("posts {}\n", inst.num_posts()));
    for a in 0..inst.num_applicants() {
        let line = inst
            .groups(a)
            .map(|g| {
                g.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join(" | ");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses an instance from the plain-text format.
pub fn from_text(text: &str) -> Result<PrefInstance, PopularError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| PopularError::InvalidInstance("empty instance file".into()))?;
    let num_posts: usize = header
        .strip_prefix("posts ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| PopularError::InvalidInstance(format!("bad header line: {header:?}")))?;

    let mut groups = Vec::new();
    for (i, line) in lines.enumerate() {
        let mut applicant_groups = Vec::new();
        for group in line.split('|') {
            let posts: Result<Vec<usize>, _> = group
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<usize>().map_err(|_| {
                        PopularError::InvalidInstance(format!(
                            "applicant {i}: {tok:?} is not a post id"
                        ))
                    })
                })
                .collect();
            let posts = posts?;
            if !posts.is_empty() {
                applicant_groups.push(posts);
            }
        }
        groups.push(applicant_groups);
    }
    PrefInstance::new_with_ties(num_posts, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{uniform_strict, with_ties, GeneratorConfig};
    use crate::paper::figure1_instance;

    #[test]
    fn roundtrip_paper_instance() {
        let inst = figure1_instance();
        let text = to_text(&inst);
        let back = from_text(&text).unwrap();
        assert_eq!(inst, back);
        assert!(text.starts_with("posts 9\n"));
        assert!(text.contains("0 | 3 | 4 | 1 | 5"));
    }

    #[test]
    fn roundtrip_generated_instances() {
        let cfg = GeneratorConfig {
            num_applicants: 30,
            num_posts: 25,
            list_len: 6,
            seed: 1,
        };
        for inst in [uniform_strict(&cfg), with_ties(&cfg, 3)] {
            let back = from_text(&to_text(&inst)).unwrap();
            assert_eq!(inst, back);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            from_text(""),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            from_text("nonsense\n1 2"),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            from_text("posts 2\n0 zebra"),
            Err(PopularError::InvalidInstance(_))
        ));
        // Out-of-range post ids are caught by instance validation.
        assert!(matches!(
            from_text("posts 2\n0 5"),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn blank_lines_and_empty_groups_are_ignored() {
        let inst = from_text("posts 3\n\n0 | | 1\n\n2\n").unwrap();
        assert_eq!(inst.num_applicants(), 2);
        assert_eq!(inst.groups(0).collect::<Vec<_>>(), vec![&[0][..], &[1][..]]);
        assert_eq!(inst.groups(1).collect::<Vec<_>>(), vec![&[2][..]]);
    }
}
