//! A self-contained plain-text round-trip for popular-matching instances.
//!
//! No external serialisation crates are needed: an instance is stored as a
//! header line with the post count followed by one line per applicant, with
//! tie groups separated by `|` and posts within a group separated by
//! spaces.  The Figure 1 instance, for example, starts:
//!
//! ```text
//! posts 9
//! 0 | 3 | 4 | 1 | 5
//! 3 | 4 | 6 | 1 | 7
//! ...
//! ```
//!
//! [`text`] wraps an instance in a [`std::fmt::Display`] adapter (so
//! `io::text(&inst).to_string()` — or any `write!` sink — renders it), and
//! [`parse`] reads the format back:
//!
//! ```
//! use pm_instances::{io, paper};
//!
//! let inst = paper::figure1_instance();
//! let round_tripped = io::parse(&io::text(&inst).to_string()).unwrap();
//! assert_eq!(inst, round_tripped);
//! ```
//!
//! # Strictness and line numbers
//!
//! The format has no silent recovery: line `k + 2` of the file is exactly
//! applicant `k`.  A blank line would denote an applicant with an empty
//! preference list — which [`PrefInstance`] cannot represent — so it is a
//! reported error, never skipped (skipping would shift every later
//! applicant's index and break the [`text`]/[`parse`] inverse).  Empty tie
//! groups (`0 | | 1`) are likewise errors.  Every parse error names the
//! 1-based file line it arose on.  Trailing newlines at end of file are
//! the only tolerated slack.
//!
//! # Parsing strategy
//!
//! [`parse`] is a streaming two-pass reader: pass 1 only counts (entries
//! and tie groups per line), building the three CSR offset arrays; pass 2
//! fills the flat post and rank arrays straight into their final, exactly
//! pre-sized buffers.  No nested per-applicant vectors are ever
//! materialised — the arrays go through
//! [`PrefInstance::from_csr_parts`] for one O(|E|) validation pass.

use std::fmt;

use pm_popular::error::PopularError;
use pm_popular::instance::{check_sizes, PrefInstance, RankArray, MAX_ENTITIES};
use pm_pram::Idx;

/// [`Display`](fmt::Display) adapter rendering an instance in the
/// plain-text format; obtain one via [`text`].
pub struct TextFormat<'a>(&'a PrefInstance);

/// Wraps an instance for plain-text rendering: `text(&inst).to_string()`
/// is the serialised form, and [`parse`] is its inverse.
pub fn text(inst: &PrefInstance) -> TextFormat<'_> {
    TextFormat(inst)
}

impl fmt::Display for TextFormat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "posts {}", self.0.num_posts())?;
        for a in 0..self.0.num_applicants() {
            let mut first_group = true;
            for g in self.0.groups(a) {
                if !first_group {
                    f.write_str(" | ")?;
                }
                first_group = false;
                let mut first_post = true;
                for p in g {
                    if !first_post {
                        f.write_str(" ")?;
                    }
                    first_post = false;
                    write!(f, "{p}")?;
                }
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

/// Parses an instance from the plain-text format (inverse of [`text`]).
///
/// Streaming two-pass reader (see the module docs): pass 1 counts entries
/// and tie groups per line and builds the CSR offset arrays; pass 2 fills
/// the flat post and rank arrays directly.  Errors name the 1-based file
/// line; blank lines and empty tie groups are errors, not skipped.
pub fn parse(text: &str) -> Result<PrefInstance, PopularError> {
    let invalid = |msg: String| Err(PopularError::InvalidInstance(msg));
    // Trailing newlines at EOF are slack, interior blank lines are not.
    let text = text.trim_end_matches(['\n', '\r']);

    let mut lines = text.lines();
    let header = match lines.next() {
        Some(h) if !h.trim().is_empty() => h,
        _ => return invalid("empty instance file".into()),
    };
    let mut toks = header.split_whitespace();
    match toks.next() {
        Some("posts") => {}
        _ => {
            return invalid(format!(
                "line 1: expected header \"posts <count>\", found {header:?}"
            ));
        }
    }
    let num_posts: usize = match toks.next() {
        Some(tok) => match tok.parse() {
            Ok(n) => n,
            Err(_) => return invalid(format!("line 1: bad post count {tok:?}")),
        },
        None => return invalid("line 1: header \"posts\" is missing its count".into()),
    };
    if let Some(extra) = toks.next() {
        return invalid(format!(
            "line 1: unexpected token {extra:?} after the post count"
        ));
    }

    // Pass 1: count entries and tie groups per applicant line, building
    // the three offset arrays.  Applicant `a` is always file line `a + 2`.
    let mut list_off = vec![0u32];
    let mut group_off = vec![0u32];
    let mut group_idx = vec![0u32];
    let mut n_e = 0usize;
    let mut deepest = 0usize;
    for (a, line) in lines.clone().enumerate() {
        let ln = a + 2;
        if line.trim().is_empty() {
            return invalid(format!(
                "line {ln}: blank line — applicant {a} would have an empty preference \
                 list, which is not representable"
            ));
        }
        let mut line_groups = 0usize;
        for group in line.split('|') {
            let in_group = group.split_whitespace().count();
            if in_group == 0 {
                return invalid(format!("line {ln}: applicant {a} has an empty tie group"));
            }
            n_e += in_group;
            if n_e > MAX_ENTITIES {
                return Err(PopularError::TooLarge {
                    what: "preference edges",
                    count: n_e,
                    limit: MAX_ENTITIES,
                });
            }
            line_groups += 1;
            group_off.push(n_e as u32);
        }
        deepest = deepest.max(line_groups);
        group_idx.push(group_off.len() as u32 - 1);
        list_off.push(n_e as u32);
    }

    // The size funnel runs between the passes: pass 2 narrows post ids to
    // the 32-bit layer, which is only sound once the counts are known to
    // fit (an absurd header post count must be a typed TooLarge here).
    check_sizes(list_off.len() - 1, num_posts, n_e)?;

    // Pass 2: fill the flat arrays into exactly pre-sized buffers.
    let mut post_flat = Vec::with_capacity(n_e);
    let mut rank_flat =
        RankArray::with_capacity(n_e, deepest <= RankArray::U16_MAX_RANK as usize + 1);
    for (a, line) in lines.enumerate() {
        let ln = a + 2;
        for (r, group) in line.split('|').enumerate() {
            for tok in group.split_whitespace() {
                let p: usize = match tok.parse() {
                    Ok(p) => p,
                    Err(_) => return invalid(format!("line {ln}: {tok:?} is not a post id")),
                };
                if p >= num_posts {
                    return invalid(format!(
                        "line {ln}: applicant {a} ranks post {p}, but there are only \
                         {num_posts} posts"
                    ));
                }
                post_flat.push(Idx::new(p));
                rank_flat.push(r as u32);
            }
        }
    }

    PrefInstance::from_csr_parts(
        num_posts, post_flat, rank_flat, list_off, group_off, group_idx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{uniform_strict, with_ties, GeneratorConfig};
    use crate::paper::figure1_instance;

    #[test]
    fn roundtrip_paper_instance() {
        let inst = figure1_instance();
        let text = super::text(&inst).to_string();
        let back = parse(&text).unwrap();
        assert_eq!(inst, back);
        assert!(text.starts_with("posts 9\n"));
        assert!(text.contains("0 | 3 | 4 | 1 | 5"));
    }

    #[test]
    fn roundtrip_generated_instances() {
        let cfg = GeneratorConfig {
            num_applicants: 30,
            num_posts: 25,
            list_len: 6,
            seed: 1,
        };
        for inst in [uniform_strict(&cfg), with_ties(&cfg, 3)] {
            let back = parse(&super::text(&inst).to_string()).unwrap();
            assert_eq!(inst, back);
        }
    }

    fn invalid_message(text: &str) -> String {
        match parse(text) {
            Err(PopularError::InvalidInstance(msg)) => msg,
            other => panic!("expected InvalidInstance for {text:?}, got {other:?}"),
        }
    }

    #[test]
    fn header_errors_distinguish_prefix_from_count() {
        // A wrong prefix and a bad count are different mistakes and get
        // different messages.
        let msg = invalid_message("nonsense\n1 2");
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("expected header"), "{msg}");
        let msg = invalid_message("posts zebra\n0 1");
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("bad post count"), "{msg}");
        assert!(msg.contains("zebra"), "{msg}");
        let msg = invalid_message("posts\n0 1");
        assert!(msg.contains("missing its count"), "{msg}");
        let msg = invalid_message("posts 3 extra\n0 1");
        assert!(msg.contains("extra"), "{msg}");
        assert!(matches!(parse(""), Err(PopularError::InvalidInstance(_))));
        assert!(matches!(
            parse("\n\n"),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn parse_errors_name_the_real_file_line() {
        // Applicant k is file line k + 2, and errors say so.
        let msg = invalid_message("posts 2\n0\nzebra");
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("zebra"), "{msg}");
        // Out-of-range post ids are caught with the same line numbers.
        let msg = invalid_message("posts 2\n0\n1\n0 5");
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("post 5"), "{msg}");
        // An absurd header count is a typed TooLarge, not a panic.
        assert!(matches!(
            parse(&format!("posts {}\n0 1", usize::MAX)),
            Err(PopularError::TooLarge { .. })
        ));
    }

    #[test]
    fn blank_lines_are_explicit_empty_lists_and_rejected() {
        // A blank interior line denotes an empty preference list — an
        // error, never silently skipped (skipping would shift every later
        // applicant's index).
        let msg = invalid_message("posts 3\n\n0 | 1\n2");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("empty preference list"), "{msg}");
        let msg = invalid_message("posts 3\n0 | 1\n\n2");
        assert!(msg.contains("line 3"), "{msg}");
        // Empty tie groups are likewise explicit errors.
        let msg = invalid_message("posts 3\n0 | | 1");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("empty tie group"), "{msg}");
        // Trailing newlines at EOF are the only tolerated slack.
        let inst = parse("posts 3\n0 | 1\n2\n\n").unwrap();
        assert_eq!(inst.num_applicants(), 2);
    }

    #[test]
    fn text_and_parse_are_inverse_both_ways() {
        // instance → text → instance (value inverse) and
        // text → instance → text (byte inverse on canonical text).
        let cfg = GeneratorConfig {
            num_applicants: 20,
            num_posts: 15,
            list_len: 4,
            seed: 9,
        };
        for inst in [uniform_strict(&cfg), with_ties(&cfg, 3)] {
            let rendered = super::text(&inst).to_string();
            let back = parse(&rendered).unwrap();
            assert_eq!(back, inst);
            assert_eq!(super::text(&back).to_string(), rendered);
        }
    }
}
