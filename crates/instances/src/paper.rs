//! The worked examples of the paper, with their expected structures.

use pm_popular::instance::{Assignment, PrefInstance};
use pm_stable::instance::{SmInstance, StableMatching};

/// The popular matching instance `I` of Figure 1 (8 applicants `a1..a8`,
/// 9 posts `p1..p9`; everything 0-indexed here).
pub fn figure1_instance() -> PrefInstance {
    PrefInstance::new_strict(
        9,
        vec![
            vec![0, 3, 4, 1, 5],    // a1: p1 p4 p5 p2 p6
            vec![3, 4, 6, 1, 7],    // a2: p4 p5 p7 p2 p8
            vec![3, 0, 2, 7],       // a3: p4 p1 p3 p8
            vec![0, 6, 3, 2, 8],    // a4: p1 p7 p4 p3 p9
            vec![4, 0, 6, 1, 5],    // a5: p5 p1 p7 p2 p6
            vec![6, 5],             // a6: p7 p6
            vec![6, 3, 7, 1],       // a7: p7 p4 p8 p2
            vec![6, 3, 0, 4, 8, 2], // a8: p7 p4 p1 p5 p9 p3
        ],
    )
    .expect("the paper instance is well-formed")
}

/// The popular matching of instance `I` printed in Section II of the paper:
/// `{(a1,p1), (a2,p2), (a3,p4), (a4,p3), (a5,p5), (a6,p7), (a7,p8), (a8,p9)}`.
pub fn figure1_popular_matching() -> Assignment {
    Assignment::new(vec![0, 1, 3, 2, 4, 6, 7, 8])
}

/// The expected f-posts of Figure 2: `{p1, p4, p5, p7}`.
pub fn figure2_f_posts() -> Vec<usize> {
    vec![0, 3, 4, 6]
}

/// The expected s-posts of Figure 2: `{p2, p3, p6, p8, p9}`.
pub fn figure2_s_posts() -> Vec<usize> {
    vec![1, 2, 5, 7, 8]
}

/// The reduced preference lists of Figure 2(a) as `(f(a), s(a))` pairs.
pub fn figure2_reduced_lists() -> Vec<(usize, usize)> {
    vec![
        (0, 1), // a1: p1 p2
        (3, 1), // a2: p4 p2
        (3, 2), // a3: p4 p3
        (0, 2), // a4: p1 p3
        (4, 1), // a5: p5 p2
        (6, 5), // a6: p7 p6
        (6, 7), // a7: p7 p8
        (6, 8), // a8: p7 p9
    ]
}

/// The stable marriage instance of Figure 5 and the stable matching `M`
/// marked in it (re-exported from `pm_stable`).
pub fn figure5_instance() -> (SmInstance, StableMatching) {
    pm_stable::instance::figure5_instance()
}

/// The men of the two rotations exposed in Figure 5's matching `M`
/// (Figure 7): `(m1 m2 m4)` and `(m3 m6)`, 0-indexed.
pub fn figure7_rotation_men() -> Vec<Vec<usize>> {
    vec![vec![0, 1, 3], vec![2, 5]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_popular::reduced::ReducedGraph;
    use pm_popular::verify::is_popular_characterization;
    use pm_pram::DepthTracker;

    #[test]
    fn figure1_matching_is_popular_and_full_size() {
        let inst = figure1_instance();
        let m = figure1_popular_matching();
        assert!(m.is_valid(&inst));
        assert!(is_popular_characterization(&inst, &m));
        assert_eq!(m.size(&inst), 8);
    }

    #[test]
    fn figure2_structures_match() {
        let inst = figure1_instance();
        let g = ReducedGraph::build_sequential(&inst).unwrap();
        assert_eq!(g.f_posts(), figure2_f_posts());
        assert_eq!(g.s_posts(), figure2_s_posts());
        for (a, (f, s)) in figure2_reduced_lists().into_iter().enumerate() {
            assert_eq!(g.f(a), f);
            assert_eq!(g.s(a), s);
        }
    }

    #[test]
    fn figure5_and_figure7_match() {
        let (inst, m) = figure5_instance();
        assert!(inst.is_stable(&m));
        let t = DepthTracker::new();
        let outcome = pm_stable::next::next_stable_matchings(&inst, &m, &t);
        let pm_stable::next::NextStableOutcome::Next(results) = outcome else {
            panic!("Figure 5's matching exposes rotations");
        };
        let men: Vec<Vec<usize>> = results.iter().map(|(r, _)| r.men()).collect();
        assert_eq!(men, figure7_rotation_men());
    }
}
