//! Resident matching: the two-sided market of Section VI.
//!
//! Hospitals and residents both rank each other (the stable-marriage
//! model).  Finding one stable matching in parallel is CC-hard, but given a
//! stable matching, Algorithm 4 enumerates all of its "next" matchings in
//! the lattice in polylog time per matching — useful when a market operator
//! wants to present *alternative* stable outcomes that trade resident
//! optimality for hospital optimality step by step.
//!
//! ```text
//! cargo run --release --example resident_matching [n]
//! ```

use popular_matchings::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let inst = generators::random_sm_instance(n, 2024);
    println!("resident matching market with {n} residents and {n} hospitals");

    let tracker = DepthTracker::new();
    let resident_optimal = inst.man_optimal();
    let hospital_optimal = inst.woman_optimal();
    assert!(inst.is_stable(&resident_optimal));
    assert!(inst.is_stable(&hospital_optimal));

    let moved = (0..n)
        .filter(|&r| resident_optimal.wife(r) != hospital_optimal.wife(r))
        .count();
    println!("residents whose assignment differs between the two extremes: {moved}");

    // Walk a few levels down the lattice from the resident-optimal matching,
    // always taking the first exposed rotation, and report what changes.
    let mut current = resident_optimal.clone();
    let mut level = 0;
    loop {
        match next_stable_matchings(&inst, &current, &tracker) {
            NextStableOutcome::WomanOptimal => {
                println!("reached the hospital-optimal matching after {level} eliminations");
                assert_eq!(current, hospital_optimal);
                break;
            }
            NextStableOutcome::Next(results) => {
                println!(
                    "level {level}: {} rotation(s) exposed, sizes {:?}",
                    results.len(),
                    results.iter().map(|(r, _)| r.len()).collect::<Vec<_>>()
                );
                // Every successor must be stable and strictly dominated.
                for (rotation, next) in &results {
                    assert!(inst.is_stable(next));
                    assert!(current.strictly_dominates(next, &inst));
                    assert!(rotation.is_exposed_in(&inst, &current));
                }
                current = results[0].1.clone();
                level += 1;
                if level > 4 * n {
                    panic!("lattice walk did not terminate");
                }
            }
        }
    }

    let stats = tracker.stats();
    println!(
        "PRAM accounting: depth = {} rounds over {} eliminations (avg {:.1} rounds per matching)",
        stats.depth,
        level.max(1),
        stats.depth as f64 / level.max(1) as f64
    );
}
