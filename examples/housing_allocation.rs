//! Housing allocation: the one-sided market the paper's introduction cites
//! ("families to government-owned housing").
//!
//! A city allocates houses to families.  Each family ranks the houses it
//! finds acceptable; houses have no preferences.  We want an allocation no
//! majority of families would vote to replace — a popular matching — and,
//! among those, one that houses as many families as possible
//! (maximum-cardinality), treats scarce first choices fairly
//! (rank-maximal / fair), and we want to know when no popular allocation
//! exists at all.
//!
//! ```text
//! cargo run --release --example housing_allocation [num_families]
//! ```

use popular_matchings::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    // A realistic housing market: a few highly desirable buildings (hot
    // posts) and longer tails; every family lists 6 acceptable houses.
    let cfg = GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 10,
        list_len: 6,
        seed: 7,
    };
    let contended = generators::clustered(&cfg, (n / 20).max(1));
    println!(
        "housing market: {} families, {} houses",
        contended.num_applicants(),
        contended.num_posts()
    );

    let tracker = DepthTracker::new();
    let inst = match popular_matching_run(&contended, &tracker) {
        Ok(_) => contended,
        Err(PopularError::NoPopularMatching) => {
            println!("no popular allocation exists in the heavily contended market:");
            println!("  too many families chase the same few homes (see EXPERIMENTS.md, E5).");
            println!("  The city relaxes the shortlists (distinct first choices) and retries.\n");
            generators::last_resort_pressure(&cfg, 0.3)
        }
        Err(e) => panic!("unexpected error: {e}"),
    };

    match popular_matching_run(&inst, &tracker) {
        Err(PopularError::NoPopularMatching) => {
            println!("no popular allocation exists even in the relaxed market");
        }
        Err(e) => panic!("unexpected error: {e}"),
        Ok(run) => {
            let matching = &run.matching;
            println!("popular allocation found:");
            println!(
                "  families housed (not on last resort): {}",
                matching.size(&inst)
            );
            println!(
                "  degree-1 peeling rounds: {} (Lemma 2 bound: {})",
                run.peel_rounds,
                (n as f64).log2().ceil() as u32 + 1
            );

            let max = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
            println!(
                "  maximum-cardinality popular allocation houses: {}",
                max.size(&inst)
            );

            let fair = fair_popular_matching(&inst, &tracker).unwrap();
            let rank_maximal = rank_maximal_popular_matching(&inst, &tracker).unwrap();
            let profile_fair = Profile::of(&inst, &fair);
            let profile_rm = Profile::of(&inst, &rank_maximal);
            println!(
                "  fair popular allocation profile (first 4 ranks): {:?}",
                &profile_fair.0[..4.min(profile_fair.0.len())]
            );
            println!(
                "  rank-maximal allocation profile (first 4 ranks): {:?}",
                &profile_rm.0[..4.min(profile_rm.0.len())]
            );
            println!(
                "  families with their first choice: fair = {}, rank-maximal = {}",
                profile_fair.0[0], profile_rm.0[0]
            );
        }
    }

    // Compare against the sequential baseline to show both give popular
    // allocations of identical size.
    if let (Ok(par), Ok(seq)) = (
        popular_matching_nc(&inst, &tracker),
        popular_matching_sequential(&inst),
    ) {
        assert!(is_popular_characterization(&inst, &par));
        assert!(is_popular_characterization(&inst, &seq));
        println!(
            "parallel vs sequential baseline: both popular, sizes {} / {}",
            par.size(&inst),
            seq.size(&inst)
        );
    }

    let stats = tracker.stats();
    println!(
        "PRAM accounting over the whole run: depth = {}, work = {}, avg parallelism = {:.1}",
        stats.depth,
        stats.work,
        stats.average_parallelism()
    );
}
