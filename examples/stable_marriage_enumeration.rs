//! Enumerating the whole stable-matching lattice with Algorithm 4.
//!
//! The paper quotes Gusfield–Irving's question of whether, "after sufficient
//! preprocessing, the stable matchings could be enumerated in parallel, with
//! small parallel time per matching".  This example does exactly that on the
//! paper's Figure 5 instance and on a small random instance: starting from
//! the man-optimal matching, it closes the lattice under Algorithm 4 and
//! prints every stable matching together with the rotations that expose it.
//!
//! ```text
//! cargo run --example stable_marriage_enumeration
//! ```

use popular_matchings::prelude::*;

fn main() {
    // Part 1: the paper's Figure 5 instance. ---------------------------
    let (inst, figure5_m) = paper::figure5_instance();
    let tracker = DepthTracker::new();

    println!("Figure 5 instance (8 men, 8 women)");
    println!(
        "stable matching M from the figure: {:?}",
        pretty(&figure5_m)
    );

    match next_stable_matchings(&inst, &figure5_m, &tracker) {
        NextStableOutcome::WomanOptimal => println!("M is woman-optimal (unexpected!)"),
        NextStableOutcome::Next(results) => {
            println!("rotations exposed in M (Figure 7):");
            for (rotation, next) in &results {
                println!(
                    "  rotation on men {:?}  =>  M\\rho = {:?}",
                    rotation
                        .men()
                        .iter()
                        .map(|m| format!("m{}", m + 1))
                        .collect::<Vec<_>>(),
                    pretty(next)
                );
            }
        }
    }

    let all = all_stable_matchings(&inst, &tracker);
    println!("the instance has {} stable matchings in total:", all.len());
    for (i, m) in all.iter().enumerate() {
        println!("  #{:<2} {:?}{}", i, pretty(m), annotate(&inst, m));
    }

    // Part 2: a random instance, cross-checked against brute force. ----
    let random = generators::random_sm_instance(6, 11);
    let walked = all_stable_matchings(&random, &tracker);
    let brute = popular_matchings_brute(&random);
    println!(
        "\nrandom 6x6 instance: lattice walk found {} stable matchings, brute force found {}",
        walked.len(),
        brute
    );
    assert_eq!(walked.len(), brute);
}

fn pretty(m: &StableMatching) -> Vec<String> {
    (0..m.n())
        .map(|man| format!("m{}-w{}", man + 1, m.wife(man) + 1))
        .collect()
}

fn annotate(inst: &SmInstance, m: &StableMatching) -> &'static str {
    if *m == inst.man_optimal() {
        "   <- man-optimal M0"
    } else if *m == inst.woman_optimal() {
        "   <- woman-optimal Mz"
    } else {
        ""
    }
}

fn popular_matchings_brute(inst: &SmInstance) -> usize {
    popular_matchings::stable::lattice::brute_force_stable_matchings(inst).len()
}
