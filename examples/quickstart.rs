//! Quickstart: run the paper's worked example end to end.
//!
//! Reproduces Section III-C: the Figure 1 instance, its reduced graph
//! (Figure 2), the NC popular matching (Algorithm 1), the switching graph
//! (Figure 4), and the maximum-cardinality popular matching (Algorithm 3).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use popular_matchings::popular::switching::ComponentKind;
use popular_matchings::prelude::*;

fn main() {
    let inst = paper::figure1_instance();
    println!(
        "Figure 1 instance: {} applicants, {} posts",
        inst.num_applicants(),
        inst.num_posts()
    );

    // Algorithm 1 ------------------------------------------------------
    let tracker = DepthTracker::new();
    let run = popular_matching_run(&inst, &tracker).expect("Figure 1 admits a popular matching");

    println!("\nReduced graph (Figure 2):");
    println!(
        "  f-posts: {:?}",
        run.reduced
            .f_posts()
            .iter()
            .map(|p| format!("p{}", p + 1))
            .collect::<Vec<_>>()
    );
    println!(
        "  s-posts: {:?}",
        run.reduced
            .s_posts()
            .iter()
            .map(|p| post_name(&inst, *p))
            .collect::<Vec<_>>()
    );
    for a in 0..inst.num_applicants() {
        println!(
            "  a{}: f = p{}, s = {}",
            a + 1,
            run.reduced.f(a) + 1,
            post_name(&inst, run.reduced.s(a))
        );
    }

    println!(
        "\nPopular matching found by Algorithm 1 (peel rounds = {}):",
        run.peel_rounds
    );
    for a in 0..inst.num_applicants() {
        println!("  a{} -> {}", a + 1, post_name(&inst, run.matching.post(a)));
    }
    assert!(is_popular_characterization(&inst, &run.matching));
    println!("  size = {} (verified popular)", run.matching.size(&inst));

    // Switching graph (Figure 4) ---------------------------------------
    let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tracker);
    let components = sg.components(&tracker);
    println!("\nSwitching graph G_M ({} components):", components.len());
    for c in &components {
        match &c.kind {
            ComponentKind::Cycle(cycle) => println!(
                "  cycle component on {:?}",
                cycle
                    .iter()
                    .map(|p| post_name(&inst, *p))
                    .collect::<Vec<_>>()
            ),
            ComponentKind::Tree { sink } => println!(
                "  tree component with sink {} ({} posts)",
                post_name(&inst, *sink),
                c.posts.len()
            ),
        }
    }

    // Algorithm 3 ------------------------------------------------------
    let max = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
    println!(
        "\nMaximum-cardinality popular matching has size {}",
        max.size(&inst)
    );

    let stats = tracker.stats();
    println!(
        "\nPRAM accounting: depth = {} rounds, work = {} operations, avg parallelism = {:.1}",
        stats.depth,
        stats.work,
        stats.average_parallelism()
    );
}

fn post_name(inst: &PrefInstance, p: usize) -> String {
    if inst.is_last_resort(p) {
        format!("l(a{})", p - inst.num_posts() + 1)
    } else {
        format!("p{}", p + 1)
    }
}
